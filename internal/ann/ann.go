// Package ann provides approximate-nearest-neighbor retrieval over tag
// embeddings — the candidate-generation half of the serving tier's
// retrieve-then-rank split. The paper's metapath2vec serving "directly
// uploads the closest tags of each tag from the offline calculation in
// advance" (Section VI-F); at million-tag scale both that offline
// calculation and the online hot path need sublinear search, which this
// package supplies through two backends behind one Retriever interface:
//
//   - Index: random-hyperplane LSH with multi-table lookup — build-cheap,
//     probe cost proportional to bucket occupancy;
//   - Graph: a graph-walk (HNSW-style) small-world index — build-heavier,
//     probe cost ~ef·M distance evaluations with higher recall per
//     microsecond at large n.
//
// Both backends scan int8-quantized embedding rows (mat.QuantMatrix, 8x less
// memory traffic than float64 rows) through the fused dequant-dot kernel,
// and both search through a caller-owned Scratch so the per-query hot path
// allocates nothing. Exact brute-force search over the float rows remains
// the ground truth for recall measurement and the fallback for small
// catalogs.
package ann

import (
	"fmt"
	"sort"
	"sync"

	"intellitag/internal/mat"
)

// Neighbor is one search result.
type Neighbor struct {
	ID  int
	Sim float64 // cosine similarity to the query (quantized-row precision)
}

// Retriever is the interface the serving tier ranks behind: retrieve up to k
// approximate nearest neighbors of a query vector. Implementations must be
// safe for concurrent SearchInto calls with distinct Scratch values and must
// be fully deterministic — equal-similarity ties break toward the smaller
// id, so two replicas (or two runs) retrieving with the same index and query
// return bit-identical neighbor lists.
type Retriever interface {
	// SearchInto writes up to k approximate nearest neighbors of query into
	// sc, best first, excluding the id exclude (pass -1 to keep all). The
	// returned slice aliases sc's storage: it is valid until sc's next use.
	SearchInto(sc *Scratch, query []float64, k, exclude int) []Neighbor
	// Len reports how many vectors the index holds.
	Len() int
	// Name identifies the backend ("lsh", "hnsw") in benchmarks and metrics.
	Name() string
}

// Scratch is the reusable per-query state of a search: an epoch-stamped
// visited table plus neighbor buffers. A Scratch may be reused across
// queries and backends but not concurrently; callers on the serving hot path
// keep them in a pool. The zero value is ready to use.
type Scratch struct {
	visited []uint32
	epoch   uint32
	out     []Neighbor // result heap / final sorted results
	cand    []Neighbor // graph-walk candidate heap
	tmp     []Neighbor // construction-time neighbor selection
	keep    []Neighbor // construction-time diverse-neighbor output
}

// NewScratch returns an empty Scratch (grown on first use).
func NewScratch() *Scratch { return new(Scratch) }

// reset prepares the scratch for a query over n ids. The visited table is
// cleared in O(1) by bumping the epoch; the rare wraparound pays one memclr.
func (sc *Scratch) reset(n int) {
	if len(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps from the previous cycle would alias
		clear(sc.visited)
		sc.epoch = 1
	}
	sc.out = sc.out[:0]
	sc.cand = sc.cand[:0]
}

func (sc *Scratch) seen(id int) bool { return sc.visited[id] == sc.epoch }
func (sc *Scratch) mark(id int)      { sc.visited[id] = sc.epoch }

// better is the total order every backend ranks by: higher similarity first,
// ties broken toward the smaller id. The id tie-break is what keeps seeded
// runs bit-identical whatever heap or truncation order produced the set.
func better(a, b Neighbor) bool {
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.ID < b.ID
}

// --- bounded top-k heap (worst element at the root) ---

// pushBounded inserts n into the heap h capped at k elements, evicting the
// worst when full. h is worst-at-root so the eviction test is one compare.
func pushBounded(h []Neighbor, k int, n Neighbor) []Neighbor {
	if len(h) < k {
		h = append(h, n)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if better(h[p], h[i]) { // parent must be worse than children
				h[p], h[i] = h[i], h[p]
				i = p
				continue
			}
			break
		}
		return h
	}
	if better(n, h[0]) {
		h[0] = n
		siftWorstDown(h, 0)
	}
	return h
}

// siftWorstDown restores the worst-at-root property from index i.
func siftWorstDown(h []Neighbor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && better(h[worst], h[l]) {
			worst = l
		}
		if r < len(h) && better(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// sortTopK heap-sorts a worst-at-root heap in place into best-first order
// without allocating (repeatedly pops the worst remaining to the back).
func sortTopK(h []Neighbor) {
	for m := len(h); m > 1; m-- {
		h[0], h[m-1] = h[m-1], h[0]
		siftWorstDown(h[:m-1], 0)
	}
}

// scratchPool backs the allocating convenience Search wrapper.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Search is the convenience form of Retriever.SearchInto: it draws a Scratch
// from a shared pool and returns a caller-owned copy of the results. Hot
// paths should hold their own Scratch and call SearchInto directly.
func Search(r Retriever, query []float64, k, exclude int) []Neighbor {
	sc := scratchPool.Get().(*Scratch)
	out := append([]Neighbor(nil), r.SearchInto(sc, query, k, exclude)...)
	scratchPool.Put(sc)
	return out
}

// Index is a random-hyperplane LSH index with multi-table lookup.
type Index struct {
	dim     int
	bits    int // hyperplanes per table
	tables  int
	planes  []float64 // (tables*bits) x dim, row-major
	buckets []map[uint64][]int32
	vecs    *mat.Matrix
	q       *mat.QuantMatrix
}

// Config sizes the LSH index.
type Config struct {
	Bits   int // hash bits per table (more bits = smaller buckets)
	Tables int // more tables = higher recall
	Seed   int64
}

// DefaultConfig suits a few hundred to a few hundred thousand vectors.
func DefaultConfig() Config { return Config{Bits: 10, Tables: 8, Seed: 61} }

// Build constructs the index over the rows of vecs (row index = id). The
// rows are additionally quantized to int8 for the candidate scan; vecs is
// retained read-only for recall measurement.
func Build(vecs *mat.Matrix, cfg Config) *Index {
	if cfg.Bits <= 0 || cfg.Bits > 60 {
		panic(fmt.Sprintf("ann: bits %d out of range", cfg.Bits))
	}
	g := mat.NewRNG(cfg.Seed)
	ix := &Index{
		dim: vecs.Cols, bits: cfg.Bits, tables: cfg.Tables,
		vecs:    vecs,
		q:       mat.Quantize(vecs),
		planes:  make([]float64, cfg.Tables*cfg.Bits*vecs.Cols),
		buckets: make([]map[uint64][]int32, cfg.Tables),
	}
	for i := range ix.planes {
		ix.planes[i] = g.NormFloat64()
	}
	for t := 0; t < cfg.Tables; t++ {
		ix.buckets[t] = map[uint64][]int32{}
	}
	for id := 0; id < vecs.Rows; id++ {
		v := vecs.Row(id)
		for t := 0; t < cfg.Tables; t++ {
			h := ix.hash(t, v)
			ix.buckets[t][h] = append(ix.buckets[t][h], int32(id))
		}
	}
	return ix
}

// hash computes table t's signature of v.
func (ix *Index) hash(t int, v []float64) uint64 {
	var h uint64
	base := t * ix.bits * ix.dim
	for b := 0; b < ix.bits; b++ {
		if mat.Dot(ix.planes[base+b*ix.dim:base+(b+1)*ix.dim], v) >= 0 {
			h |= 1 << uint(b)
		}
	}
	return h
}

// Len implements Retriever.
func (ix *Index) Len() int { return ix.vecs.Rows }

// Name implements Retriever.
func (ix *Index) Name() string { return "lsh" }

// SearchInto implements Retriever: candidates come from the query's bucket
// in every table, scored against the quantized rows into a bounded heap, so
// a probe costs O(candidates · dim) with zero allocations after scratch
// warm-up. The heap holds a pool larger than k (the int8 scores reorder
// near-ties, which matters inside tight clusters); the pool survivors are
// rescored with exact float similarity before the final top-k cut.
func (ix *Index) SearchInto(sc *Scratch, query []float64, k, exclude int) []Neighbor {
	if k <= 0 || ix.vecs.Rows == 0 {
		return nil
	}
	sc.reset(ix.vecs.Rows)
	vNorm, vSum := mat.Norm(query), mat.Sum(query)
	pool := 4 * k
	if pool < 32 {
		pool = 32
	}
	h := sc.out[:0]
	for t := 0; t < ix.tables; t++ {
		for _, id32 := range ix.buckets[t][ix.hash(t, query)] {
			id := int(id32)
			if id == exclude || sc.seen(id) {
				continue
			}
			sc.mark(id)
			h = pushBounded(h, pool, Neighbor{ID: id, Sim: ix.q.CosineSim(id, query, vNorm, vSum)})
		}
	}
	for i := range h {
		h[i].Sim = mat.CosineSim(query, ix.vecs.Row(h[i].ID))
	}
	for i := len(h)/2 - 1; i >= 0; i-- { // restore heap order post-rescore
		siftWorstDown(h, i)
	}
	sc.out = h
	sortTopK(h)
	if len(h) > k {
		h = h[:k]
	}
	return h
}

// Search returns up to k approximate nearest neighbors of query by cosine
// similarity, excluding exclude (pass -1 to keep all). If fewer than k
// distinct candidates surface from the probed buckets the search degrades
// gracefully (callers needing guarantees use Exact). The result is freshly
// allocated; hot paths use SearchInto.
func (ix *Index) Search(query []float64, k, exclude int) []Neighbor {
	return Search(ix, query, k, exclude)
}

// Exact returns the true top-k neighbors by brute force over the float rows
// — the ground truth for recall measurements and the fallback for small
// catalogs.
func Exact(vecs *mat.Matrix, query []float64, k, exclude int) []Neighbor {
	out := make([]Neighbor, 0, vecs.Rows)
	for id := 0; id < vecs.Rows; id++ {
		if id == exclude {
			continue
		}
		out = append(out, Neighbor{ID: id, Sim: mat.CosineSim(query, vecs.Row(id))})
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool { return better(ns[i], ns[j]) })
}

// RecallAtK measures a retriever's recall against exact float search over
// sampled query rows of vecs: |approx top-k ∩ exact top-k| / k, averaged.
func RecallAtK(r Retriever, vecs *mat.Matrix, k, sampleEvery int) float64 {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	sc := NewScratch()
	truthSet := map[int]bool{}
	var total float64
	var n int
	for id := 0; id < vecs.Rows; id += sampleEvery {
		q := vecs.Row(id)
		truth := Exact(vecs, q, k, id)
		approx := r.SearchInto(sc, q, k, id)
		clear(truthSet)
		for _, t := range truth {
			truthSet[t.ID] = true
		}
		hits := 0
		for _, a := range approx {
			if truthSet[a.ID] {
				hits++
			}
		}
		if len(truth) > 0 {
			total += float64(hits) / float64(len(truth))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// RecallAtK measures the index's recall against exact search (see the
// package-level RecallAtK).
func (ix *Index) RecallAtK(k int, sampleEvery int) float64 {
	return RecallAtK(ix, ix.vecs, k, sampleEvery)
}

// ClosestTable precomputes each row's top-k neighbor ids — the artifact the
// paper's metapath2vec deployment uploads to the online servers.
func (ix *Index) ClosestTable(k int) [][]int {
	sc := NewScratch()
	out := make([][]int, ix.vecs.Rows)
	for id := 0; id < ix.vecs.Rows; id++ {
		ns := ix.SearchInto(sc, ix.vecs.Row(id), k, id)
		ids := make([]int, len(ns))
		for i, n := range ns {
			ids[i] = n.ID
		}
		out[id] = ids
	}
	return out
}
