package ann

import (
	"testing"

	"intellitag/internal/mat"
)

// clusteredVecs builds nClusters tight clusters of size clusterSize on a
// sphere, so true nearest neighbors are unambiguous.
func clusteredVecs(nClusters, clusterSize, dim int, seed int64) *mat.Matrix {
	g := mat.NewRNG(seed)
	centers := mat.New(nClusters, dim)
	g.Normal(centers, 1)
	vecs := mat.New(nClusters*clusterSize, dim)
	for c := 0; c < nClusters; c++ {
		for i := 0; i < clusterSize; i++ {
			row := vecs.Row(c*clusterSize + i)
			for j := 0; j < dim; j++ {
				row[j] = centers.At(c, j) + g.NormFloat64()*0.05
			}
		}
	}
	return vecs
}

func TestExactTopK(t *testing.T) {
	vecs := clusteredVecs(4, 5, 8, 1)
	// Query with vector 0: its top-4 (excluding itself) must be its cluster.
	got := Exact(vecs, vecs.Row(0), 4, 0)
	if len(got) != 4 {
		t.Fatalf("got %d neighbors", len(got))
	}
	for _, n := range got {
		if n.ID >= 5 {
			t.Fatalf("neighbor %d outside cluster 0", n.ID)
		}
		if n.Sim < 0.9 {
			t.Fatalf("cluster neighbor sim %v too low", n.Sim)
		}
	}
	// Sorted descending.
	for i := 1; i < len(got); i++ {
		if got[i].Sim > got[i-1].Sim {
			t.Fatal("not sorted")
		}
	}
}

func TestExactExclude(t *testing.T) {
	vecs := clusteredVecs(2, 3, 4, 2)
	got := Exact(vecs, vecs.Row(0), 10, 0)
	for _, n := range got {
		if n.ID == 0 {
			t.Fatal("excluded id returned")
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d", len(got))
	}
}

func TestIndexHighRecallOnClusters(t *testing.T) {
	vecs := clusteredVecs(20, 10, 16, 3)
	ix := Build(vecs, DefaultConfig())
	recall := ix.RecallAtK(5, 7)
	if recall < 0.85 {
		t.Fatalf("recall@5 = %.3f, want >= 0.85", recall)
	}
}

func TestIndexSearchFindsOwnCluster(t *testing.T) {
	vecs := clusteredVecs(10, 8, 16, 4)
	ix := Build(vecs, DefaultConfig())
	hits := ix.Search(vecs.Row(0), 7, 0)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	inCluster := 0
	for _, n := range hits {
		if n.ID < 8 {
			inCluster++
		}
	}
	if inCluster < len(hits)/2 {
		t.Fatalf("only %d/%d hits in own cluster", inCluster, len(hits))
	}
}

func TestClosestTable(t *testing.T) {
	vecs := clusteredVecs(5, 4, 8, 5)
	ix := Build(vecs, DefaultConfig())
	table := ix.ClosestTable(3)
	if len(table) != vecs.Rows {
		t.Fatalf("table rows %d", len(table))
	}
	for id, ns := range table {
		if len(ns) > 3 {
			t.Fatalf("row %d has %d neighbors", id, len(ns))
		}
		for _, n := range ns {
			if n == id {
				t.Fatalf("row %d lists itself", id)
			}
		}
	}
}

func TestBuildPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(mat.New(1, 4), Config{Bits: 0, Tables: 1, Seed: 1})
}

func TestIndexDeterministic(t *testing.T) {
	vecs := clusteredVecs(6, 5, 8, 6)
	a := Build(vecs, DefaultConfig()).Search(vecs.Row(3), 5, 3)
	b := Build(vecs, DefaultConfig()).Search(vecs.Row(3), 5, 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("nondeterministic order")
		}
	}
}
