package ann

import (
	"fmt"
	"math"

	"intellitag/internal/mat"
)

// GraphConfig sizes the graph-walk index.
type GraphConfig struct {
	M              int // neighbors kept per node on upper layers (2M on layer 0)
	EfConstruction int // beam width while inserting
	EfSearch       int // default beam width while searching (raised to k if smaller)
	Seed           int64
}

// DefaultGraphConfig favors recall@10 >= 0.95 at 10^5-10^6 vectors while
// keeping construction single-pass on one core.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{M: 12, EfConstruction: 80, EfSearch: 96, Seed: 61}
}

// Graph is a hierarchical small-world (HNSW-style) index: each vector is a
// node linked to its approximate nearest neighbors on a stack of layers
// whose occupancy decays geometrically, and a query greedily descends the
// sparse upper layers before running a beam search on the dense bottom one.
// Construction is strictly sequential (ids inserted in row order, levels
// drawn from one seeded stream) and every comparison breaks similarity ties
// toward the smaller id, so a (vecs, config) pair always builds the exact
// same graph and every search over it is bit-reproducible — the property
// the serving tier's replica determinism contract leans on. Distances scan
// the int8-quantized rows through the fused dequant-dot kernel.
type Graph struct {
	cfg      GraphConfig
	dim      int
	vecs     *mat.Matrix
	q        *mat.QuantMatrix
	links    [][][]int32 // [id][level] -> neighbor ids
	entry    int32
	maxLevel int
	mL       float64
}

// maxGraphLevel caps the level draw so a pathological RNG run cannot build
// an arbitrarily tall (all-overhead) tower.
const maxGraphLevel = 16

// BuildGraph constructs the index over the rows of vecs (row index = id).
// vecs is retained read-only; the candidate scans use quantized rows.
func BuildGraph(vecs *mat.Matrix, cfg GraphConfig) *Graph {
	if cfg.M < 2 {
		panic(fmt.Sprintf("ann: graph M %d < 2", cfg.M))
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = cfg.M
	}
	if cfg.EfSearch < 1 {
		cfg.EfSearch = 1
	}
	g := &Graph{
		cfg:   cfg,
		dim:   vecs.Cols,
		vecs:  vecs,
		q:     mat.Quantize(vecs),
		links: make([][][]int32, vecs.Rows),
		entry: -1,
		mL:    1 / math.Log(float64(cfg.M)),
	}
	rng := mat.NewRNG(cfg.Seed)
	sc := NewScratch()
	for id := 0; id < vecs.Rows; id++ {
		// 1-Float64() is in (0,1], so the draw is finite; level 0 dominates.
		level := int(-math.Log(1-rng.Float64()) * g.mL)
		if level > maxGraphLevel {
			level = maxGraphLevel
		}
		g.insert(sc, id, level)
	}
	return g
}

// sim scores candidate id against a float query via the quantized rows.
func (g *Graph) sim(id int, query []float64, qNorm, qSum float64) float64 {
	return g.q.CosineSim(id, query, qNorm, qSum)
}

// insert wires node id into layers 0..level.
func (g *Graph) insert(sc *Scratch, id, level int) {
	g.links[id] = make([][]int32, level+1)
	if g.entry < 0 {
		g.entry = int32(id)
		g.maxLevel = level
		return
	}
	query := g.vecs.Row(id)
	qNorm, qSum := mat.Norm(query), mat.Sum(query)
	ep := int(g.entry)
	// Beam-assisted descent through the layers above the new node's top level.
	for lc := g.maxLevel; lc > level; lc-- {
		ep = g.descend(sc, ep, lc, upperBeam, query, qNorm, qSum)
	}
	top := level
	if top > g.maxLevel {
		top = g.maxLevel
	}
	for lc := top; lc >= 0; lc-- {
		res := g.searchLayer(sc, query, qNorm, qSum, ep, g.cfg.EfConstruction, lc)
		sortTopK(res)
		maxM := g.cfg.M
		if lc == 0 {
			maxM = 2 * g.cfg.M
		}
		kept := g.selectDiverse(sc, res, g.cfg.M)
		nbrs := make([]int32, 0, len(kept))
		for _, n := range kept {
			nbrs = append(nbrs, int32(n.ID))
		}
		g.links[id][lc] = nbrs
		for _, nb := range nbrs {
			g.addLink(sc, int(nb), int32(id), lc, maxM)
		}
		if len(res) > 0 {
			ep = res[0].ID
		}
	}
	if level > g.maxLevel {
		g.maxLevel = level
		g.entry = int32(id)
	}
}

// addLink appends newID to node's layer-lc neighbor list; when it overflows
// maxM the list is re-selected with the same diversity heuristic used at
// insertion, scored against the node's own row, so the kept set is
// deterministic whatever order links arrived in.
func (g *Graph) addLink(sc *Scratch, node int, newID int32, lc, maxM int) {
	ls := append(g.links[node][lc], newID)
	if len(ls) <= maxM {
		g.links[node][lc] = ls
		return
	}
	ref := g.vecs.Row(node)
	rNorm, rSum := mat.Norm(ref), mat.Sum(ref)
	sc.tmp = sc.tmp[:0]
	for _, nb := range ls {
		sc.tmp = append(sc.tmp, Neighbor{ID: int(nb), Sim: g.sim(int(nb), ref, rNorm, rSum)})
	}
	// Insertion sort: the list is maxM+1 long.
	for i := 1; i < len(sc.tmp); i++ {
		for j := i; j > 0 && better(sc.tmp[j], sc.tmp[j-1]); j-- {
			sc.tmp[j], sc.tmp[j-1] = sc.tmp[j-1], sc.tmp[j]
		}
	}
	kept := g.selectDiverse(sc, sc.tmp, maxM)
	ls = ls[:0]
	for _, n := range kept {
		ls = append(ls, int32(n.ID))
	}
	g.links[node][lc] = ls
}

// selectDiverse applies the HNSW neighbor-selection heuristic to a best-first
// sorted candidate list: a candidate is kept only while the kept set has room
// and the candidate is at least as close to the reference point (whose
// similarities are in cand.Sim) as to every neighbor already kept. Keeping
// only such "spanning" edges is what lets the beam search hop between dense
// clusters instead of drowning in intra-cluster links — closest-M selection
// on clustered data disconnects the graph and caps recall. If the heuristic
// rejects so many candidates that fewer than m survive, the closest rejected
// candidates are backfilled in order, preserving degree (and therefore
// connectivity) on pathological inputs. The returned slice aliases sc.keep.
func (g *Graph) selectDiverse(sc *Scratch, cands []Neighbor, m int) []Neighbor {
	if len(cands) <= m {
		return cands
	}
	kept := sc.keep[:0]
	for _, c := range cands {
		if len(kept) == m {
			break
		}
		row := g.vecs.Row(c.ID)
		nrm, sum := mat.Norm(row), mat.Sum(row)
		diverse := true
		for _, s := range kept {
			if g.q.CosineSim(s.ID, row, nrm, sum) > c.Sim {
				diverse = false // closer to a kept neighbor than to the reference
				break
			}
		}
		if diverse {
			kept = append(kept, c)
		}
	}
	if len(kept) < m {
		for _, c := range cands {
			if len(kept) == m {
				break
			}
			seen := false
			for _, s := range kept {
				if s.ID == c.ID {
					seen = true
					break
				}
			}
			if !seen {
				kept = append(kept, c)
			}
		}
		// Restore best-first order after backfill (len <= m, tiny).
		for i := 1; i < len(kept); i++ {
			for j := i; j > 0 && better(kept[j], kept[j-1]); j-- {
				kept[j], kept[j-1] = kept[j-1], kept[j]
			}
		}
	}
	sc.keep = kept
	return kept
}

// upperBeam is the beam width used while descending the layers above the
// target: the canonical ef=1 greedy walk gets trapped in local similarity
// maxima on adversarially clustered data (tight clusters leave the sparse
// upper layers with deceptive plateaus), and a stuck descent strands the
// whole query in the wrong basin no matter how wide the layer-0 beam is. A
// small beam restores navigability for a few hundred extra distance
// evaluations per query. Queries widen the descent beam with EfSearch
// (descentBeam) — at million-row scale most recall loss is basin stranding,
// so a wider ef must buy a wider descent or the ef knob goes flat.
const upperBeam = 16

// descentBeam is the search-time descent width for a layer-0 beam of ef.
// Insertion keeps the fixed upperBeam (construction cost is paid n times).
func descentBeam(ef int) int {
	if b := ef / 4; b > upperBeam {
		return b
	}
	return upperBeam
}

// descend runs a beam-wide search on layer lc and returns the best node
// found — the entry point for the next layer down.
func (g *Graph) descend(sc *Scratch, ep, lc, beam int, query []float64, qNorm, qSum float64) int {
	res := g.searchLayer(sc, query, qNorm, qSum, ep, beam, lc)
	best := res[0]
	for _, n := range res[1:] {
		if better(n, best) {
			best = n
		}
	}
	return best.ID
}

// searchLayer runs the beam search on layer lc seeded at ep, returning up to
// ef results as a worst-at-root heap in sc.out (callers sortTopK it).
func (g *Graph) searchLayer(sc *Scratch, query []float64, qNorm, qSum float64, ep, ef, lc int) []Neighbor {
	sc.reset(len(g.links))
	seed := Neighbor{ID: ep, Sim: g.sim(ep, query, qNorm, qSum)}
	sc.mark(ep)
	res := pushBounded(sc.out[:0], ef, seed)
	cand := pushBestBounded(sc.cand[:0], seed)
	for len(cand) > 0 {
		c := cand[0]
		cand = popBest(cand)
		// The best unexplored candidate is already worse than the worst kept
		// result and the beam is full: no path can improve the result set.
		if len(res) == ef && better(res[0], c) {
			break
		}
		for _, nb := range g.links[c.ID][lc] {
			id := int(nb)
			if sc.seen(id) {
				continue
			}
			sc.mark(id)
			n := Neighbor{ID: id, Sim: g.sim(id, query, qNorm, qSum)}
			if len(res) < ef || better(n, res[0]) {
				res = pushBounded(res, ef, n)
				cand = pushBestBounded(cand, n)
			}
		}
	}
	sc.out, sc.cand = res, cand
	return res
}

// --- best-at-root heap for the candidate frontier ---

func pushBestBounded(h []Neighbor, n Neighbor) []Neighbor {
	h = append(h, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if better(h[i], h[p]) {
			h[p], h[i] = h[i], h[p]
			i = p
			continue
		}
		break
	}
	return h
}

func popBest(h []Neighbor) []Neighbor {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && better(h[l], h[best]) {
			best = l
		}
		if r < len(h) && better(h[r], h[best]) {
			best = r
		}
		if best == i {
			return h
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// Len implements Retriever.
func (g *Graph) Len() int { return len(g.links) }

// Name implements Retriever.
func (g *Graph) Name() string { return "hnsw" }

// SearchInto implements Retriever: greedy descent through the upper layers,
// then a beam search of width max(EfSearch, k) on layer 0. Zero allocations
// after scratch warm-up.
func (g *Graph) SearchInto(sc *Scratch, query []float64, k, exclude int) []Neighbor {
	if k <= 0 || len(g.links) == 0 {
		return nil
	}
	qNorm, qSum := mat.Norm(query), mat.Sum(query)
	ef := g.cfg.EfSearch
	if ef < k {
		ef = k
	}
	ep := int(g.entry)
	beam := descentBeam(ef)
	for lc := g.maxLevel; lc >= 1; lc-- {
		ep = g.descend(sc, ep, lc, beam, query, qNorm, qSum)
	}
	if exclude >= 0 {
		ef++ // keep a full k even if the excluded id lands in the beam
	}
	res := g.searchLayer(sc, query, qNorm, qSum, ep, ef, 0)
	// Rescore the beam survivors with exact float cosine: the quantized scan
	// decides which ~ef candidates surface (the cache-friendly part), but its
	// ~Scale/2 per-element error reorders near-ties, and at k << ef that
	// reordering is the difference between 0.94 and 0.99 recall@10. ef float
	// dots per query is noise next to the beam's quantized scan volume.
	for i := range res {
		res[i].Sim = mat.CosineSim(query, g.vecs.Row(res[i].ID))
	}
	for i := len(res)/2 - 1; i >= 0; i-- { // restore heap order post-rescore
		siftWorstDown(res, i)
	}
	sortTopK(res)
	if exclude >= 0 {
		kept := res[:0]
		for _, n := range res {
			if n.ID != exclude {
				kept = append(kept, n)
			}
		}
		res = kept
	}
	if len(res) > k {
		res = res[:k]
	}
	sc.out = res
	return res
}

// Search is the allocating convenience form of SearchInto.
func (g *Graph) Search(query []float64, k, exclude int) []Neighbor {
	return Search(g, query, k, exclude)
}

// WithEfSearch returns a view of the graph that searches with a different
// beam width. The links, vectors and quantized rows are shared (the graph is
// immutable after construction), so benchmarks can sweep the recall/latency
// trade-off from one build.
func (g *Graph) WithEfSearch(ef int) *Graph {
	cp := *g
	if ef < 1 {
		ef = 1
	}
	cp.cfg.EfSearch = ef
	return &cp
}

// RecallAtK measures the graph's recall against exact search (see the
// package-level RecallAtK).
func (g *Graph) RecallAtK(k int, sampleEvery int) float64 {
	return RecallAtK(g, g.vecs, k, sampleEvery)
}
