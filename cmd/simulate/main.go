// Command simulate drives the online user-population simulation (the
// paper's Section VI-F evaluation) against a chosen model and prints daily
// CTR, HIR and latency.
//
// Usage:
//
//	simulate [-model intellitag|bert4rec|metapath2vec|popularity] [-days 10] [-sessions 150] [-fast] [-seed 1]
//	         [-telemetry-addr localhost:9090] [-trace-sample 64]
//	         [-replicas 1] [-snapshots DIR] [-swap-at-day 0] [-swap-stagger 50ms]
//	         [-record trace.httprr] [-record-sessions 5]
//	         [-online] [-online-out BENCH_ONLINE_PR10.json] [-online-snapshots DIR]
//
// With -online, instead of the single-bucket simulation, the online-learning
// demo runs: a frozen bucket and a streaming-learner bucket serve the same
// base snapshot over a world whose click process drifts mid-run, the online
// bucket fine-tunes on the live stream and recovers CTR, and the run ends
// with a poison drill (garbage-label round → gate block → forced promotion →
// drift-monitor auto-rollback). See cmd/simulate/online.go.
//
// With -record, instead of simulating, the held-out sessions' click →
// recommend round-trips are driven over HTTP against the configured model and
// sealed into a checksummed httprr trace for deterministic replay (serving
// tests, loadgen -trace).
//
// With -snapshots, the simulation serves the store's EARLIEST committed
// version (trained by tagrec-train -snapshots) instead of training in
// process, and -swap-at-day N performs a live rolling swap to the store's
// latest version after day N completes — traffic keeps flowing across the
// flip, and the end-of-run summary lists every version served.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"intellitag/internal/baselines"
	"intellitag/internal/core"
	"intellitag/internal/httprr"
	"intellitag/internal/obs"
	"intellitag/internal/prof"
	"intellitag/internal/serving"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

func main() {
	model := flag.String("model", "intellitag", "model to serve: intellitag, bert4rec, metapath2vec, popularity")
	days := flag.Int("days", 10, "simulated days")
	sessionsPerDay := flag.Int("sessions", 150, "sessions per day")
	fast := flag.Bool("fast", true, "use the small world")
	seed := flag.Int64("seed", 1, "world seed")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics and /debug/trace for the live run on this address")
	traceSample := flag.Int("trace-sample", 64, "sample one request trace in every N (with -telemetry-addr)")
	replicas := flag.Int("replicas", 1, "engine replicas behind the session hash")
	snapshots := flag.String("snapshots", "", "serve model versions from this snapshot store instead of training in process")
	swapAtDay := flag.Int("swap-at-day", 0, "rolling-swap to the store's latest version after this 1-based day (with -snapshots; 0 disables)")
	swapStagger := flag.Duration("swap-stagger", 50*time.Millisecond, "pause between replica flips during the rolling swap")
	annOn := flag.Bool("ann", false, "retrieve-then-rank: ANN candidate retrieval when the model exposes tag embeddings")
	annK := flag.Int("ann-k", 64, "candidates retrieved per request before ranking")
	annBackend := flag.String("ann-backend", "hnsw", "retrieval backend: hnsw or lsh")
	annMinCatalog := flag.Int("ann-min-catalog", 256, "tenant catalogs below this size are scored exhaustively")
	record := flag.String("record", "", "record held-out sessions' HTTP click → recommend traffic to this httprr trace and exit")
	recordSessions := flag.Int("record-sessions", 5, "held-out sessions to record with -record")
	onlineMode := flag.Bool("online", false, "run the online-learning demo: frozen vs streaming-learner buckets over a drifting world, ending in a poison/rollback drill")
	onlineOut := flag.String("online-out", "", "write the -online report JSON here")
	onlineSnaps := flag.String("online-snapshots", "", "snapshot store dir for the -online version spine (default: a temp dir, removed on exit)")
	flag.Parse()
	defer prof.Start()()

	if *onlineMode {
		if err := runOnline(onlineOpts{
			days: *days, sessionsPerDay: *sessionsPerDay, seed: *seed, fast: *fast,
			replicas: *replicas, stagger: *swapStagger, snapshots: *onlineSnaps, out: *onlineOut,
		}); err != nil {
			log.Fatalf("-online: %v", err)
		}
		return
	}

	worldCfg := synth.DefaultConfig()
	if *fast {
		worldCfg = synth.SmallConfig()
	}
	worldCfg.Seed = *seed
	world := synth.Generate(worldCfg)
	train, _, heldout := world.SplitSessions(0.9, 0.05)
	graph := world.BuildGraph(train)
	var clicks [][]int
	for _, s := range train {
		clicks = append(clicks, s.Clicks)
	}
	prefixes := core.ExpandPrefixes(clicks)

	catalog, index := serving.BuildCatalog(world, train)
	recCfg := core.DefaultConfig()
	if *fast {
		recCfg.Dim, recCfg.Heads = 16, 2
	}
	start := time.Now()
	var bundle *serving.ModelBundle
	var snapStore *snapshot.Store
	if *snapshots != "" {
		// Serve from the store: start on the EARLIEST committed version so a
		// -swap-at-day run visibly rolls forward to the latest one.
		if *model != "intellitag" {
			log.Fatalf("-snapshots serves the intellitag model, not %q", *model)
		}
		var err error
		snapStore, err = snapshot.Open(*snapshots)
		if err != nil {
			log.Fatalf("open -snapshots: %v", err)
		}
		list, err := snapStore.List()
		if err != nil {
			log.Fatalf("list -snapshots: %v", err)
		}
		if len(list) == 0 {
			log.Fatalf("-snapshots %s holds no committed versions (run tagrec-train -snapshots first)", *snapshots)
		}
		first := list[0]
		m, _, err := core.LoadSnapshotVersion(snapStore, first.ID, recCfg)
		if err != nil {
			log.Fatalf("load snapshot %s: %v", first.ID, err)
		}
		bundle = &serving.ModelBundle{VersionID: first.ID, Catalog: catalog, Index: index, Scorer: m}
		log.Printf("serving snapshot %s (%d committed in store)", first.ID, len(list))
	} else {
		var scorer serving.Scorer
		switch *model {
		case "intellitag":
			m := core.Build(recCfg, graph, nil)
			tc := core.DefaultTrainConfig()
			if *fast {
				tc.Epochs, tc.JointEpochs = 2, 2
			}
			core.TrainFull(m, graph, prefixes, tc)
			m.Freeze()
			scorer = m
		case "bert4rec":
			m := baselines.NewBERT4Rec(world.NumTags(), 16, 2, 2, 12, 0.2, 12)
			tc := baselines.DefaultTrainConfig()
			if *fast {
				tc.Epochs = 2
			}
			m.Train(prefixes, tc)
			scorer = m
		case "metapath2vec":
			scorer = baselines.NewMetapath2Vec(graph, 16, clicks, baselines.DefaultMetapath2VecConfig())
		case "popularity":
			scorer = popScorer{catalog.Popularity}
		default:
			log.Fatalf("unknown model %q", *model)
		}
		bundle = &serving.ModelBundle{Catalog: catalog, Index: index, Scorer: scorer}
	}
	log.Printf("model %s ready in %s", bundle.Scorer.Name(), time.Since(start).Round(time.Millisecond))

	rs := serving.NewReplicaSet(bundle, *replicas, 1, store.NewLog(), nil)
	if *annOn {
		rs.SetRetrieval(serving.RetrievalConfig{
			Enabled: true, K: *annK, Backend: *annBackend,
			MinCatalog: *annMinCatalog, RecallSample: 64,
		})
		if _, ok := bundle.Scorer.(serving.TagEmbedder); !ok {
			log.Printf("-ann: model %s exposes no tag embeddings; serving stays exhaustive", bundle.Scorer.Name())
		} else {
			log.Printf("ANN retrieval on: backend=%s k=%d min-catalog=%d", *annBackend, *annK, *annMinCatalog)
		}
	}
	if *telemetryAddr != "" {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(*traceSample, 256)
		for _, e := range rs.Engines() {
			e.SetTelemetry(reg, tracer)
		}
		addr, err := obs.ServeBackground(*telemetryAddr, obs.Mux(reg, tracer))
		if err != nil {
			log.Fatalf("serve -telemetry-addr: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics (traces at /debug/trace)", addr)
	}
	if *record != "" {
		if err := recordTraffic(rs, heldout, *record, *recordSessions); err != nil {
			log.Fatalf("-record: %v", err)
		}
		return
	}
	simCfg := serving.DefaultSimConfig()
	simCfg.Days = *days
	simCfg.SessionsPerDay = *sessionsPerDay
	if *swapAtDay > 0 {
		if snapStore == nil {
			log.Fatal("-swap-at-day requires -snapshots")
		}
		simCfg.OnDayEnd = func(day int) {
			if day+1 != *swapAtDay {
				return
			}
			latest, err := snapStore.Latest()
			if err != nil {
				log.Printf("swap: %v", err)
				return
			}
			if latest.ID == bundle.VersionID {
				log.Printf("swap: latest version %s is already serving", latest.ID)
				return
			}
			m, _, err := core.LoadSnapshotVersion(snapStore, latest.ID, recCfg)
			if err != nil {
				log.Printf("swap: load %s: %v", latest.ID, err)
				return
			}
			log.Printf("day %d done: rolling swap %s -> %s over %d replicas",
				day+1, bundle.VersionID, latest.ID, rs.Size())
			rs.RollingSwap(&serving.ModelBundle{
				VersionID: latest.ID, Catalog: catalog, Index: index, Scorer: m,
			}, *swapStagger)
		}
	}
	res := serving.SimulateSet(world, rs, simCfg)

	fmt.Printf("%-5s %10s %10s %8s\n", "day", "macroCTR", "microCTR", "HIR")
	for _, d := range res.Days {
		fmt.Printf("%-5d %10.3f %10.3f %8.3f\n", d.Day+1, d.MacroCTR, d.MicroCTR, d.HIR)
	}
	fmt.Printf("\nmean macro CTR %.3f | mean HIR %.3f | latency mean %s p95 %s (%d requests)\n",
		res.MeanMacroCTR(), res.MeanHIR(), res.Latency.Mean, res.Latency.P95, res.Latency.N)
	fmt.Printf("replicas %d | versions served: %s\n", res.Replicas, strings.Join(res.Versions, " -> "))
	for _, vi := range rs.Versions() {
		fmt.Printf("  replica %d: %s (model %s, %d swaps, drained %v)\n",
			vi.Replica, vi.ID, vi.Model, vi.Swaps, vi.Drained)
	}
	if *annOn {
		var st serving.RetrievalStats
		for _, e := range rs.Engines() {
			s := e.RetrievalStats()
			st.Enabled, st.Backend, st.IndexSize = s.Enabled, s.Backend, s.IndexSize
			st.ANN += s.ANN
			st.Fallback += s.Fallback
			st.Exhaustive += s.Exhaustive
			st.ColdStart += s.ColdStart
		}
		fmt.Printf("retrieval: enabled=%v backend=%s index=%d | paths ann=%d fallback=%d exhaustive=%d coldstart=%d\n",
			st.Enabled, st.Backend, st.IndexSize, st.ANN, st.Fallback, st.Exhaustive, st.ColdStart)
	}
}

// recordTraffic replays the first n held-out sessions as HTTP click →
// recommend round-trips against the configured model, served in-process, and
// seals the traffic into a checksummed httprr trace — deterministic replay
// fodder for serving tests and loadgen -trace.
func recordTraffic(rs *serving.ReplicaSet, sessions []synth.Session, path string, n int) error {
	server := serving.NewServer(serving.NewReplicatedABRouter(rs))
	hostport, err := obs.ServeBackground("127.0.0.1:0", server)
	if err != nil {
		return err
	}
	base := "http://" + hostport

	rec := httprr.NewRecorder(nil)
	client := &http.Client{Transport: rec, Timeout: 30 * time.Second}
	post := func(path, body string) error {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if err := resp.Body.Close(); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
		return nil
	}

	if n > len(sessions) {
		n = len(sessions)
	}
	for _, s := range sessions[:n] {
		if err := post("/recommend", fmt.Sprintf(`{"tenant":%d,"session":%d,"k":5}`, s.Tenant, s.ID)); err != nil {
			return err
		}
		for _, tag := range s.Clicks {
			if err := post("/click", fmt.Sprintf(`{"tenant":%d,"session":%d,"tag":%d,"k":5}`, s.Tenant, s.ID, tag)); err != nil {
				return err
			}
			if err := post("/recommend", fmt.Sprintf(`{"tenant":%d,"session":%d,"k":5}`, s.Tenant, s.ID)); err != nil {
				return err
			}
		}
	}
	if err := rec.Save(path); err != nil {
		return err
	}
	log.Printf("recorded %d round-trips from %d sessions to %s", rec.Len(), n, path)
	return nil
}

// popScorer ranks by global popularity (the cold-start fallback as a
// standalone bucket).
type popScorer struct{ pop []float64 }

// ScoreCandidates implements serving.Scorer.
func (p popScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.pop[c]
	}
	return out
}

// Name implements serving.Scorer.
func (p popScorer) Name() string { return "popularity" }
