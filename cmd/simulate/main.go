// Command simulate drives the online user-population simulation (the
// paper's Section VI-F evaluation) against a chosen model and prints daily
// CTR, HIR and latency.
//
// Usage:
//
//	simulate [-model intellitag|bert4rec|metapath2vec|popularity] [-days 10] [-sessions 150] [-fast] [-seed 1]
//	         [-telemetry-addr localhost:9090] [-trace-sample 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"intellitag/internal/baselines"
	"intellitag/internal/core"
	"intellitag/internal/obs"
	"intellitag/internal/prof"
	"intellitag/internal/serving"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

func main() {
	model := flag.String("model", "intellitag", "model to serve: intellitag, bert4rec, metapath2vec, popularity")
	days := flag.Int("days", 10, "simulated days")
	sessionsPerDay := flag.Int("sessions", 150, "sessions per day")
	fast := flag.Bool("fast", true, "use the small world")
	seed := flag.Int64("seed", 1, "world seed")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics and /debug/trace for the live run on this address")
	traceSample := flag.Int("trace-sample", 64, "sample one request trace in every N (with -telemetry-addr)")
	flag.Parse()
	defer prof.Start()()

	worldCfg := synth.DefaultConfig()
	if *fast {
		worldCfg = synth.SmallConfig()
	}
	worldCfg.Seed = *seed
	world := synth.Generate(worldCfg)
	train, _, _ := world.SplitSessions(0.9, 0.05)
	graph := world.BuildGraph(train)
	var clicks [][]int
	for _, s := range train {
		clicks = append(clicks, s.Clicks)
	}
	prefixes := core.ExpandPrefixes(clicks)

	catalog, index := serving.BuildCatalog(world, train)
	var scorer serving.Scorer
	start := time.Now()
	switch *model {
	case "intellitag":
		cfg := core.DefaultConfig()
		if *fast {
			cfg.Dim, cfg.Heads = 16, 2
		}
		m := core.Build(cfg, graph, nil)
		tc := core.DefaultTrainConfig()
		if *fast {
			tc.Epochs, tc.JointEpochs = 2, 2
		}
		core.TrainFull(m, graph, prefixes, tc)
		m.Freeze()
		scorer = m
	case "bert4rec":
		m := baselines.NewBERT4Rec(world.NumTags(), 16, 2, 2, 12, 0.2, 12)
		tc := baselines.DefaultTrainConfig()
		if *fast {
			tc.Epochs = 2
		}
		m.Train(prefixes, tc)
		scorer = m
	case "metapath2vec":
		scorer = baselines.NewMetapath2Vec(graph, 16, clicks, baselines.DefaultMetapath2VecConfig())
	case "popularity":
		scorer = popScorer{catalog.Popularity}
	default:
		log.Fatalf("unknown model %q", *model)
	}
	log.Printf("model %s ready in %s", scorer.Name(), time.Since(start).Round(time.Millisecond))

	engine := serving.NewEngine(catalog, index, scorer, store.NewLog(), nil)
	if *telemetryAddr != "" {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(*traceSample, 256)
		engine.SetTelemetry(reg, tracer)
		addr, err := obs.ServeBackground(*telemetryAddr, obs.Mux(reg, tracer))
		if err != nil {
			log.Fatalf("serve -telemetry-addr: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics (traces at /debug/trace)", addr)
	}
	simCfg := serving.DefaultSimConfig()
	simCfg.Days = *days
	simCfg.SessionsPerDay = *sessionsPerDay
	res := serving.Simulate(world, engine, simCfg)

	fmt.Printf("%-5s %10s %10s %8s\n", "day", "macroCTR", "microCTR", "HIR")
	for _, d := range res.Days {
		fmt.Printf("%-5d %10.3f %10.3f %8.3f\n", d.Day+1, d.MacroCTR, d.MicroCTR, d.HIR)
	}
	fmt.Printf("\nmean macro CTR %.3f | mean HIR %.3f | latency mean %s p95 %s (%d requests)\n",
		res.MeanMacroCTR(), res.MeanHIR(), res.Latency.Mean, res.Latency.P95, res.Latency.N)
}

// popScorer ranks by global popularity (the cold-start fallback as a
// standalone bucket).
type popScorer struct{ pop []float64 }

// ScoreCandidates implements serving.Scorer.
func (p popScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.pop[c]
	}
	return out
}

// Name implements serving.Scorer.
func (p popScorer) Name() string { return "popularity" }
