package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/online"
	"intellitag/internal/serving"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

// onlineSchema is the report schema id benchjson validates against.
const onlineSchema = "intellitag-online/1"

// onlineOpts carries the -online mode's knobs from main.
type onlineOpts struct {
	days, sessionsPerDay int
	seed                 int64
	fast                 bool
	replicas             int
	stagger              time.Duration
	snapshots            string // snapshot store dir ("" = temp dir, removed on exit)
	out                  string // report path ("" = stdout summary only)
}

// onlineDayReport is one simulated day of the frozen-vs-online comparison.
type onlineDayReport struct {
	Day       int     `json:"day"` // 1-based
	CTRFrozen float64 `json:"ctr_frozen"`
	CTROnline float64 `json:"ctr_online"`
	HIRFrozen float64 `json:"hir_frozen"`
	HIROnline float64 `json:"hir_online"`
	Drifted   bool    `json:"drifted"`
	Verdict   string  `json:"verdict"` // monitor verdict at this day's end
	State     string  `json:"state"`   // controller state after the day-end hook
	Active    string  `json:"active"`  // serving version after the day-end hook
}

// onlineSummary aggregates the run for the pass gate.
type onlineSummary struct {
	Finetunes          int64   `json:"finetunes"`
	Promotions         int64   `json:"promotions"`
	GateBlocked        int64   `json:"gate_blocked"`
	Rollbacks          int64   `json:"rollbacks"`
	CTRFrozenPostDrift float64 `json:"ctr_frozen_post_drift"`
	CTROnlinePostDrift float64 `json:"ctr_online_post_drift"`
	RecoveryLift       float64 `json:"recovery_lift"`
	RecoveryRequired   bool    `json:"recovery_required"`
	RollbackLatencyMs  int64   `json:"rollback_latency_ms"`
	FinalActive        string  `json:"final_active"`
	FinalLKG           string  `json:"final_lkg"`
	AllDrained         bool    `json:"all_drained"`
}

// onlineReport is the -online mode's JSON artifact (BENCH_ONLINE_PR10.json).
type onlineReport struct {
	Schema         string               `json:"schema"`
	GeneratedAt    string               `json:"generated_at"`
	Days           int                  `json:"days"`
	SessionsPerDay int                  `json:"sessions_per_day"`
	Seed           int64                `json:"seed"`
	DriftFromDay   int                  `json:"drift_from_day"` // 1-based first drifted day
	DrillDay       int                  `json:"drill_day"`      // 1-based day whose end runs the poison drill
	DayStats       []onlineDayReport    `json:"day_stats"`
	Events         []online.EventRecord `json:"events"`
	DrillGate      *online.GateDecision `json:"drill_gate,omitempty"`
	Summary        onlineSummary        `json:"summary"`
	Pass           bool                 `json:"pass"`
	FailReasons    []string             `json:"fail_reasons,omitempty"`
}

// runOnline is the -online mode: the PR 10 demo. Two identically seeded
// buckets serve the same base snapshot over a world whose click process drifts
// mid-run — one frozen, one behind the online controller. The online bucket
// fine-tunes on the live stream and recovers CTR the frozen bucket cannot; the
// run ends with a poison drill (label-noise round → gate block → forced
// promotion → drift-monitor rollback) proving the safety rails on the same
// traffic. The report's pass verdict requires the drill to complete and, on
// long enough runs, the online bucket to beat the frozen one post-drift.
func runOnline(o onlineOpts) error {
	if o.days < 6 {
		return fmt.Errorf("-online needs at least 6 days (got %d): drift, adaptation and the drill each need room", o.days)
	}
	driftFrom := o.days / 3 // 0-based first drifted day
	drillDay := o.days - 3  // 0-based day whose end runs the poison drill

	// World, training set and base model — same path as the main simulator.
	worldCfg := synth.DefaultConfig()
	if o.fast {
		worldCfg = synth.SmallConfig()
	}
	worldCfg.Seed = o.seed
	world := synth.Generate(worldCfg)
	train, _, _ := world.SplitSessions(0.9, 0.05)
	graph := world.BuildGraph(train)
	var clicks [][]int
	for _, s := range train {
		clicks = append(clicks, s.Clicks)
	}
	catalog, index := serving.BuildCatalog(world, train)
	mcfg := core.DefaultConfig()
	if o.fast {
		mcfg.Dim, mcfg.Heads = 16, 2
	}
	start := time.Now()
	m := core.Build(mcfg, graph, nil)
	tc := core.DefaultTrainConfig()
	if o.fast {
		tc.Epochs, tc.JointEpochs = 2, 2
	}
	core.TrainFull(m, graph, core.ExpandPrefixes(clicks), tc)
	m.Freeze()
	log.Printf("base model trained in %s", time.Since(start).Round(time.Millisecond))

	// Commit the base into a snapshot store — the online loop's version spine.
	dir := o.snapshots
	if dir == "" {
		tmp, err := os.MkdirTemp("", "intellitag-online-*")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(tmp) }() // best-effort temp cleanup
		dir = tmp
	}
	snaps, err := snapshot.Open(dir)
	if err != nil {
		return err
	}
	baseMan, err := core.CommitSnapshot(snaps, m, graph)
	if err != nil {
		return err
	}
	baseID := baseMan.ID
	log.Printf("base snapshot %s committed to %s", baseID, dir)

	drifted := synth.DriftWorld(world, o.seed+1)
	worldAt := func(day int) *synth.World {
		if day >= driftFrom {
			return drifted
		}
		return world
	}
	bundle := func(s serving.Scorer, id string) *serving.ModelBundle {
		return &serving.ModelBundle{VersionID: id, Catalog: catalog, Index: index, Scorer: s}
	}
	loadBase := func() (*core.Model, error) {
		bm, _, err := core.LoadSnapshotVersion(snaps, baseID, mcfg)
		return bm, err
	}

	simCfg := serving.DefaultSimConfig()
	simCfg.Days = o.days
	simCfg.SessionsPerDay = o.sessionsPerDay
	simCfg.WorldAt = worldAt

	// Frozen bucket: the base version serves the whole run, drift included.
	frozenModel, err := loadBase()
	if err != nil {
		return err
	}
	rsFrozen := serving.NewReplicaSet(bundle(frozenModel, baseID), o.replicas, 1, store.NewLog(), nil)
	resFrozen := serving.SimulateSet(world, rsFrozen, simCfg)

	// Online bucket: same base, same traffic seed, but behind the controller.
	onlineModel, err := loadBase()
	if err != nil {
		return err
	}
	olog := store.NewLog()
	rsOnline := serving.NewReplicaSet(bundle(onlineModel, baseID), o.replicas, 1, olog, nil)

	lcfg := online.DefaultLearnerConfig()
	lcfg.Seed = o.seed
	lcfg.MinSessions = o.sessionsPerDay / 4
	// The demo's fine-tune is deliberately stronger than the production
	// default: one day of sessions is a small window, and the point is a
	// visible recovery within a couple of days.
	lcfg.FineTune.LR = 0.01
	lcfg.FineTune.Epochs = 3

	ccfg := online.DefaultControllerConfig()
	// Attributed CTR collapse and escalation-rate rise are the two live
	// degradation signals; the top-1 check is a generous backstop (its rate is
	// conditioned on a click having happened, which keeps it high even for a
	// bad model — the pair count collapsing shows up in CTR instead).
	ccfg.Thresholds = online.Thresholds{MinImpressions: 50, MaxCTRDrop: 0.3, MaxHIRRise: 0.12, MaxTop1Drop: 0.6}
	ccfg.ProbationWindows = 1
	ccfg.Stagger = o.stagger
	ccfg.NowUnixMs = func() int64 { return time.Now().UnixMilli() }

	ctrl, err := online.NewController(olog, snaps, mcfg, baseID, rsOnline, bundle, lcfg, ccfg, nil)
	if err != nil {
		return err
	}

	type dayNote struct {
		verdict online.Verdict
		state   online.State
		active  string
	}
	notes := make([]dayNote, o.days)
	var drillGate *online.GateDecision
	simCfg.OnDayEnd = func(day int) {
		in, verdict, err := ctrl.Observe()
		if err != nil {
			log.Printf("day %d observe: %v", day+1, err)
		}
		if os.Getenv("ONLINE_DEBUG") != "" {
			log.Printf("day %d window: %+v baseline: %+v verdict: %v", day+1, in, ctrl.Status().Baseline, verdict)
		}
		switch {
		case day == drillDay:
			// Poison drill: one garbage-label round under aggressive optimizer
			// pressure, so the candidate is unambiguously harmful. The gate
			// must block it; the operator override ships it anyway, and the
			// next day's degraded traffic triggers the auto-rollback.
			clean := ctrl.FineTuneSettings()
			poison := clean
			poison.LR, poison.Epochs = 0.08, 5
			ctrl.SetLabelNoise(1)
			ctrl.SetFineTune(poison)
			dec, err := ctrl.Step()
			ctrl.SetLabelNoise(0)
			ctrl.SetFineTune(clean)
			if err != nil {
				log.Printf("drill step: %v", err)
				break
			}
			drillGate = dec
			if dec != nil && !dec.Pass {
				if id, err := ctrl.ForcePromote(); err != nil {
					log.Printf("drill force-promote: %v", err)
				} else {
					log.Printf("day %d: poisoned candidate %s blocked by gate, forced out anyway", day+1, id)
				}
			}
		case day >= driftFrom && day < drillDay:
			// Adaptation phase: fine-tune on the day's stream, gated promote.
			if dec, err := ctrl.Step(); err != nil {
				log.Printf("day %d step: %v", day+1, err)
			} else if dec != nil {
				log.Printf("day %d: candidate %s hit@%d %.3f vs active %.3f pass=%v",
					day+1, dec.Candidate, ccfg.Gate.K, dec.CandHit, dec.ActiveHit, dec.Pass)
			}
		}
		notes[day] = dayNote{verdict: verdict, state: ctrl.CurrentState(), active: ctrl.ActiveID()}
	}
	resOnline := serving.SimulateSet(world, rsOnline, simCfg)

	// Assemble the report.
	rep := onlineReport{
		Schema:         onlineSchema,
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Days:           o.days,
		SessionsPerDay: o.sessionsPerDay,
		Seed:           o.seed,
		DriftFromDay:   driftFrom + 1,
		DrillDay:       drillDay + 1,
		DrillGate:      drillGate,
	}
	for day := 0; day < o.days; day++ {
		rep.DayStats = append(rep.DayStats, onlineDayReport{
			Day:       day + 1,
			CTRFrozen: resFrozen.Days[day].MacroCTR,
			CTROnline: resOnline.Days[day].MacroCTR,
			HIRFrozen: resFrozen.Days[day].HIR,
			HIROnline: resOnline.Days[day].HIR,
			Drifted:   day >= driftFrom,
			Verdict:   notes[day].verdict.String(),
			State:     notes[day].state.String(),
			Active:    notes[day].active,
		})
	}
	st := ctrl.Status()
	rep.Events = st.Events
	sum := onlineSummary{
		Finetunes:   st.Finetunes,
		Promotions:  st.Promotions,
		GateBlocked: st.GateBlocked,
		Rollbacks:   st.Rollbacks,
		FinalActive: st.Active,
		FinalLKG:    st.LKG,
		AllDrained:  true,
	}
	for _, ev := range st.Events {
		if ev.Kind == "rollback" {
			sum.RollbackLatencyMs = ev.LatencyMs
		}
	}
	for _, vi := range rsOnline.Versions() {
		if !vi.Drained {
			sum.AllDrained = false
		}
	}
	// Recovery lift: post-drift, pre-drill days — the first adapted day
	// through the drill day — online vs frozen macro CTR.
	var fsum, osum float64
	n := 0
	for day := driftFrom + 1; day <= drillDay; day++ {
		fsum += resFrozen.Days[day].MacroCTR
		osum += resOnline.Days[day].MacroCTR
		n++
	}
	if n > 0 {
		sum.CTRFrozenPostDrift = fsum / float64(n)
		sum.CTROnlinePostDrift = osum / float64(n)
		sum.RecoveryLift = sum.CTROnlinePostDrift - sum.CTRFrozenPostDrift
	}
	// Short runs leave the learner a single adaptation day — the drill
	// mechanics are still fully exercised, but a measurable CTR win is only
	// demanded when the learner had a few days to work with.
	sum.RecoveryRequired = drillDay-driftFrom >= 3
	rep.Summary = sum

	fail := func(format string, args ...any) {
		rep.FailReasons = append(rep.FailReasons, fmt.Sprintf(format, args...))
	}
	if sum.Finetunes < 1 {
		fail("no fine-tune rounds ran")
	}
	if sum.Promotions < 1 {
		fail("no promotions happened")
	}
	if sum.GateBlocked < 1 {
		fail("the poisoned drill candidate was not gate-blocked")
	}
	if sum.Rollbacks < 1 {
		fail("the drift monitor never rolled back the forced promotion")
	}
	if sum.FinalActive != sum.FinalLKG {
		fail("run ended off the last-known-good version (active %s, lkg %s)", sum.FinalActive, sum.FinalLKG)
	}
	if !sum.AllDrained {
		fail("a replica ended with in-flight requests undrained")
	}
	if sum.RecoveryRequired && sum.RecoveryLift <= 0 {
		fail("online bucket did not beat frozen post-drift (lift %.4f)", sum.RecoveryLift)
	}
	rep.Pass = len(rep.FailReasons) == 0

	// Human-readable summary.
	fmt.Printf("%-5s %12s %12s %10s %10s  %-13s %s\n", "day", "ctr_frozen", "ctr_online", "hir_froz", "hir_onl", "verdict", "active")
	for _, d := range rep.DayStats {
		mark := " "
		if d.Drifted {
			mark = "*"
		}
		fmt.Printf("%-4d%s %12.3f %12.3f %10.3f %10.3f  %-13s %s\n",
			d.Day, mark, d.CTRFrozen, d.CTROnline, d.HIRFrozen, d.HIROnline, d.Verdict, d.Active)
	}
	fmt.Printf("\n(*: drifted world from day %d; poison drill at end of day %d)\n", rep.DriftFromDay, rep.DrillDay)
	fmt.Printf("post-drift CTR: frozen %.3f vs online %.3f (lift %+.3f)\n",
		sum.CTRFrozenPostDrift, sum.CTROnlinePostDrift, sum.RecoveryLift)
	fmt.Printf("finetunes %d | promotions %d | gate-blocked %d | rollbacks %d (latency %dms)\n",
		sum.Finetunes, sum.Promotions, sum.GateBlocked, sum.Rollbacks, sum.RollbackLatencyMs)
	fmt.Printf("final: active %s == lkg %s: %v | pass: %v\n", sum.FinalActive, sum.FinalLKG, sum.FinalActive == sum.FinalLKG, rep.Pass)
	for _, r := range rep.FailReasons {
		fmt.Printf("  FAIL: %s\n", r)
	}

	if o.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("report written to %s", o.out)
	}
	if !rep.Pass {
		return fmt.Errorf("online demo failed: %v", rep.FailReasons)
	}
	return nil
}
