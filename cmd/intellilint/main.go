// Command intellilint runs the repo's custom static-analysis suite (see
// internal/lint) over the given package patterns and exits non-zero on any
// finding, so it can gate CI alongside vet and the race tests.
//
// Usage:
//
//	go run ./cmd/intellilint ./...
//	go run ./cmd/intellilint -list            # print the analyzer catalog
//
// Findings print as `file:line: [analyzer] message`. A finding is suppressed
// by `//lint:ignore <analyzer> <reason>` on the flagged line or the line
// directly above it; the reason is mandatory and suppressions without one are
// themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"intellitag/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their scopes, then exit")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	wide := flag.Bool("wide", false, "ignore the scoping policy and run every analyzer on every package (exploration only, not the CI gate)")
	flag.Parse()

	suite := lint.DefaultSuite()
	if *wide {
		for i := range suite {
			suite[i].Match = func(string) bool { return true }
		}
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	total := 0
	for _, pkg := range pkgs {
		for _, f := range lint.Run(suite, pkg) {
			name := f.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
					name = rel
				}
			}
			fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "intellilint: %d finding(s)\n", total)
		os.Exit(1)
	}
}
