// Command intellilint runs the repo's custom static-analysis suite (see
// internal/lint) over the given package patterns and exits non-zero on any
// finding, so it can gate CI alongside vet and the race tests.
//
// Usage:
//
//	go run ./cmd/intellilint ./...
//	go run ./cmd/intellilint -list                # print the analyzer catalog
//	go run ./cmd/intellilint -format list ./...   # bare file:line for editors
//
// Findings print as `file:line: [analyzer] message` and the exit status is
// accompanied by a per-analyzer count summary on stderr, so a red CI run says
// at a glance which invariant regressed. A finding is suppressed by
// `//lint:ignore <analyzer> <reason>` on the flagged line or the line
// directly above it; the reason is mandatory, and a suppression that no
// longer matches any finding is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"intellitag/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their scopes, then exit")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	wide := flag.Bool("wide", false, "ignore the scoping policy and run every analyzer on every package (exploration only, not the CI gate)")
	format := flag.String("format", "full", `output format: "full" (file:line: [analyzer] message) or "list" (bare file:line, one per finding, for editor jump lists)`)
	flag.Parse()

	if *format != "full" && *format != "list" {
		fmt.Fprintf(os.Stderr, "intellilint: unknown -format %q (want full or list)\n", *format)
		os.Exit(2)
	}

	suite := lint.DefaultSuite()
	if *wide {
		for i := range suite {
			suite[i].Match = func(string) bool { return true }
		}
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	total := 0
	byAnalyzer := map[string]int{}
	for _, pkg := range pkgs {
		for _, f := range lint.Run(suite, pkg) {
			name := f.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
					name = rel
				}
			}
			switch *format {
			case "list":
				fmt.Printf("%s:%d\n", name, f.Pos.Line)
			default:
				fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
			}
			byAnalyzer[f.Analyzer]++
			total++
		}
	}
	if total > 0 {
		names := make([]string, 0, len(byAnalyzer))
		for name := range byAnalyzer {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "intellilint: %d finding(s)\n", total)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-16s %d\n", name, byAnalyzer[name])
		}
		os.Exit(1)
	}
}
