// Command tagrec-train runs the offline TagRec training pipeline of Section
// V: reconstruct sessions from the interaction log, build the heterogeneous
// graph, train the model (end-to-end or static), run offline inference to
// produce the tag-embedding table, and report offline ranking quality.
//
// Usage:
//
//	tagrec-train [-fast] [-seed 1] [-mode e2e|static] [-epochs 6] [-dim 32] [-batch 8] [-workers 0]
//	             [-runlog train.jsonl] [-telemetry-addr localhost:9090]
//	             [-snapshots DIR] [-keep 5]
//
// With -snapshots, the trained model (parameters, training graph and frozen
// embedding table) is committed as a new immutable version in the snapshot
// store — the offline half of the T+1 deployment loop. Online servers pick
// the version up via POST /admin/swap or the store watcher.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/eval"
	"intellitag/internal/obs"
	"intellitag/internal/prof"
	"intellitag/internal/snapshot"
	"intellitag/internal/synth"
)

func main() {
	fast := flag.Bool("fast", true, "use the small world")
	seed := flag.Int64("seed", 1, "world seed")
	mode := flag.String("mode", "e2e", "training mode: e2e (IntelliTag) or static (IntelliTag_st)")
	epochs := flag.Int("epochs", 0, "override training epochs (0 keeps default)")
	dim := flag.Int("dim", 0, "override embedding dimension (0 keeps default)")
	batch := flag.Int("batch", 1, "training mini-batch size (1 = per-sample updates)")
	workers := flag.Int("workers", 0, "parallel workers for training/inference/eval (0 = all CPUs)")
	runlogPath := flag.String("runlog", "", "write structured JSONL run records to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics for the live training run on this address")
	snapshots := flag.String("snapshots", "", "commit the trained model to this snapshot store directory")
	keep := flag.Int("keep", 5, "snapshot versions to retain after committing (with -snapshots)")
	flag.Parse()
	defer prof.Start()()

	var runlog *obs.RunLog
	if *runlogPath != "" {
		var err error
		runlog, err = obs.OpenRunLog(*runlogPath)
		if err != nil {
			log.Fatalf("open -runlog: %v", err)
		}
		defer func() {
			if err := runlog.Close(); err != nil {
				log.Printf("close -runlog: %v", err)
			}
		}()
	}
	var reg *obs.Registry
	if *telemetryAddr != "" {
		reg = obs.NewRegistry()
		addr, err := obs.ServeBackground(*telemetryAddr, obs.Mux(reg, nil))
		if err != nil {
			log.Fatalf("serve -telemetry-addr: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics", addr)
	}

	worldCfg := synth.DefaultConfig()
	if *fast {
		worldCfg = synth.SmallConfig()
	}
	worldCfg.Seed = *seed
	world := synth.Generate(worldCfg)
	train, _, test := world.SplitSessions(0.8, 0.1)
	graph := world.BuildGraph(train)
	log.Printf("graph: %d tags, %d RQs, %d tenants, %d edges",
		graph.NumTags, graph.NumRQs, graph.NumTenants, graph.TotalEdges())

	recCfg := core.DefaultConfig()
	if *fast {
		recCfg.Dim, recCfg.Heads = 16, 2
	}
	if *dim > 0 {
		recCfg.Dim = *dim
	}
	recCfg.Workers = *workers
	trainCfg := core.DefaultTrainConfig()
	if *fast {
		trainCfg.Epochs = 2
	}
	if *epochs > 0 {
		trainCfg.Epochs = *epochs
	}
	trainCfg.BatchSize = *batch
	trainCfg.Workers = *workers
	trainCfg.Registry = reg
	if runlog != nil {
		trainCfg.Observer = func(rec obs.EpochRecord) {
			if err := runlog.Record("epoch", rec); err != nil {
				log.Printf("runlog: %v", err)
			}
		}
	}

	var clicks [][]int
	for _, s := range train {
		clicks = append(clicks, s.Clicks)
	}
	model := core.Build(recCfg, graph, nil)
	start := time.Now()
	var loss float64
	switch *mode {
	case "e2e":
		loss = core.TrainFull(model, graph, clicks, trainCfg)
	case "static":
		loss = core.TrainStatic(model, graph, clicks, trainCfg)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	log.Printf("trained (%s) in %s, final loss %.3f", *mode, time.Since(start).Round(time.Millisecond), loss)

	// Offline inference: the embedding table that deployment uploads.
	model.Freeze()
	log.Printf("tag embedding table: %d x %d", model.Frozen.Rows, model.Frozen.Cols)

	var committed snapshot.Manifest
	if *snapshots != "" {
		s, err := snapshot.Open(*snapshots)
		if err != nil {
			log.Fatalf("open -snapshots: %v", err)
		}
		committed, err = core.CommitSnapshot(s, model, graph)
		if err != nil {
			log.Fatalf("commit snapshot: %v", err)
		}
		log.Printf("committed snapshot %s (seq %d, parent %q)", committed.ID, committed.Seq, committed.Parent)
		if removed, err := s.GC(*keep); err != nil {
			log.Printf("snapshot gc: %v", err)
		} else if len(removed) > 0 {
			log.Printf("snapshot gc removed %d old versions", len(removed))
		}
	}

	protocol := eval.DefaultProtocol()
	protocol.Workers = *workers
	report := eval.EvaluateRanking(model, world, test, protocol)
	fmt.Printf("\nOffline evaluation (%d queries, 49 same-tenant negatives):\n", report.N)
	fmt.Printf("  MRR %.3f | NDCG@1 %.3f | NDCG@5 %.3f | NDCG@10 %.3f | HR@5 %.3f | HR@10 %.3f\n",
		report.MRR, report.NDCG1, report.NDCG5, report.NDCG10, report.HR5, report.HR10)

	if err := runlog.Record("result", map[string]any{
		"mode": *mode, "loss": loss, "train_sec": time.Since(start).Seconds(),
		"mrr": report.MRR, "ndcg5": report.NDCG5, "hr5": report.HR5,
		"snapshot": committed.ID,
	}); err != nil {
		log.Printf("runlog: %v", err)
	}
}
