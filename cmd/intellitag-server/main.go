// Command intellitag-server runs the online IntelliTag model server over a
// synthetic world: it trains the TagRec model offline, uploads the frozen
// tag embeddings (the deployment strategy of Section V-B) and serves the
// Q&A / tag-recommendation HTTP API.
//
// Usage:
//
//	intellitag-server [-addr :8080] [-fast] [-seed 1] [-trace-sample 64]
//	                  [-replicas 1] [-snapshots DIR] [-watch 0s]
//
// Endpoints: POST /ask, /click, /recommend; GET /healthz, /metrics,
// /metrics.json, /debug/trace.
//
// With -snapshots, the server also mounts the hot-swap control plane (POST
// /admin/swap, GET /admin/versions): the trained model is committed to the
// store at startup, and any version committed later (tagrec-train
// -snapshots) can be rolled across the replicas without restarting. A
// non-zero -watch interval polls the store and auto-swaps to each newly
// committed version.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/mat"
	"intellitag/internal/obs"
	"intellitag/internal/prof"
	"intellitag/internal/qamatch"
	"intellitag/internal/serving"
	"intellitag/internal/snapshot"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fast := flag.Bool("fast", true, "train the small fast configuration")
	seed := flag.Int64("seed", 1, "world seed")
	matcher := flag.Bool("matcher", true, "train and serve the Q&A matcher (reranks /ask results)")
	batch := flag.Int("batch", 1, "training mini-batch size (1 = per-sample updates)")
	workers := flag.Int("workers", 0, "parallel workers for training and request scoring (0 = all CPUs)")
	traceSample := flag.Int("trace-sample", 64, "sample one request trace in every N")
	replicas := flag.Int("replicas", 1, "engine replicas behind the session hash")
	snapshots := flag.String("snapshots", "", "snapshot store directory; arms POST /admin/swap and commits the startup model")
	watch := flag.Duration("watch", 0, "poll the snapshot store and auto-swap to new versions at this interval (with -snapshots; 0 disables)")
	annOn := flag.Bool("ann", true, "retrieve-then-rank: ANN candidate retrieval over the frozen tag embeddings")
	annK := flag.Int("ann-k", 64, "candidates retrieved per request before ranking")
	annBackend := flag.String("ann-backend", "hnsw", "retrieval backend: hnsw or lsh")
	annMinCatalog := flag.Int("ann-min-catalog", 256, "tenant catalogs below this size are scored exhaustively")
	flag.Parse()
	stop := prof.Start()
	defer stop()
	prof.FlushOnInterrupt(stop)

	worldCfg := synth.DefaultConfig()
	if *fast {
		worldCfg = synth.SmallConfig()
	}
	worldCfg.Seed = *seed

	log.Printf("generating world (seed %d)...", *seed)
	world := synth.Generate(worldCfg)
	train, _, _ := world.SplitSessions(0.9, 0.05)
	graph := world.BuildGraph(train)

	log.Printf("training TagRec model on %d sessions...", len(train))
	recCfg := core.DefaultConfig()
	if *fast {
		recCfg.Dim = 16
		recCfg.Heads = 2
	}
	recCfg.Workers = *workers
	model := core.Build(recCfg, graph, nil)
	trainCfg := core.DefaultTrainConfig()
	if *fast {
		trainCfg.Epochs = 2
	}
	trainCfg.BatchSize = *batch
	trainCfg.Workers = *workers
	var clicks [][]int
	for _, s := range train {
		clicks = append(clicks, s.Clicks)
	}
	start := time.Now()
	core.TrainFull(model, graph, clicks, trainCfg)
	log.Printf("trained in %s", time.Since(start).Round(time.Millisecond))

	// Offline inference: freeze tag embeddings for serving (no online GNN).
	model.Freeze()

	catalog, index := serving.BuildCatalog(world, train)

	var qmIndex serving.QuestionMatcher
	if *matcher {
		log.Printf("training Q&A matcher...")
		rng := mat.NewRNG(*seed + 7)
		var pairs []qamatch.Pair
		for _, rq := range world.RQs {
			pairs = append(pairs, qamatch.Pair{Question: world.Paraphrase(rq.ID, rng), RQ: rq.Text, Tenant: rq.Tenant})
		}
		vocab := qamatch.BuildVocab(pairs)
		qm := qamatch.NewMatcher(qamatch.DefaultConfig(), vocab)
		qamatch.Train(qm, pairs, qamatch.DefaultTrainConfig())
		var ids []int
		var texts []string
		for _, rq := range world.RQs {
			ids = append(ids, rq.ID)
			texts = append(texts, rq.Text)
		}
		qmIndex = qm.BuildIndex(ids, texts)
		log.Printf("matcher online")
	}

	bundle := &serving.ModelBundle{Catalog: catalog, Index: index, Scorer: model, Matcher: qmIndex}
	var snapStore *snapshot.Store
	if *snapshots != "" {
		var err error
		snapStore, err = snapshot.Open(*snapshots)
		if err != nil {
			log.Fatalf("open -snapshots: %v", err)
		}
		man, err := core.CommitSnapshot(snapStore, model, graph)
		if err != nil {
			log.Fatalf("commit startup snapshot: %v", err)
		}
		bundle.VersionID = man.ID
		log.Printf("startup model committed as snapshot %s", man.ID)
	}

	rs := serving.NewReplicaSet(bundle, *replicas, *workers, store.NewLog(), nil)
	if *annOn {
		rs.SetRetrieval(serving.RetrievalConfig{
			Enabled: true, K: *annK, Backend: *annBackend,
			MinCatalog: *annMinCatalog, RecallSample: 64,
		})
		log.Printf("ANN retrieval on: backend=%s k=%d min-catalog=%d", *annBackend, *annK, *annMinCatalog)
	}
	server := serving.NewServer(serving.NewReplicatedABRouter(rs))
	server.EnableTelemetry(obs.NewRegistry(), obs.NewTracer(*traceSample, 256))

	if snapStore != nil {
		// The swap loader rebuilds a fresh scorer per bucket from the stored
		// parameters + graph; catalog, index and matcher are world-derived
		// and carry over unchanged.
		server.SetSnapshotSource(snapStore, func(id string) (*serving.ModelBundle, error) {
			m, _, err := core.LoadSnapshotVersion(snapStore, id, recCfg)
			if err != nil {
				return nil, err
			}
			return &serving.ModelBundle{VersionID: id, Catalog: catalog, Index: index, Scorer: m, Matcher: qmIndex}, nil
		})
		if *watch > 0 {
			w := snapshot.Watch(snapStore, *watch, func(man snapshot.Manifest) {
				log.Printf("watcher: new snapshot %s, rolling swap", man.ID)
				if _, err := server.Swap(man.ID, 50*time.Millisecond); err != nil {
					log.Printf("watcher: swap to %s failed: %v", man.ID, err)
				}
			})
			defer w.Stop()
			log.Printf("watching %s every %s for new versions", *snapshots, *watch)
		}
	}

	fmt.Printf("IntelliTag server listening on %s\n", *addr)
	hint := *addr
	if hint != "" && hint[0] == ':' {
		hint = "localhost" + hint
	}
	fmt.Printf("try: curl -s -X POST %s/recommend -d '{\"tenant\":0,\"session\":1,\"k\":5}'\n", hint)
	log.Fatal(http.ListenAndServe(*addr, server))
}
