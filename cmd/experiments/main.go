// Command experiments regenerates every table and figure of the IntelliTag
// paper's evaluation section on the synthetic world.
//
// Usage:
//
//	experiments [-run all|tableII|tableIII|tableIV|tableV|tableVI|fig5|fig6|fig7] [-fast] [-seed N] [-batch 8] [-workers 0]
//
// -fast shrinks the world and epoch counts for a quick smoke run; the
// default configuration is the experiment-scale reproduction reported in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"intellitag/internal/eval"
	"intellitag/internal/prof"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, tableII, tableIII, tableIV, tableV, tableVI, fig5, fig6, fig7, extensions")
	fast := flag.Bool("fast", false, "use the small fast configuration")
	seed := flag.Int64("seed", 0, "override the world seed (0 keeps the default)")
	batch := flag.Int("batch", 1, "training mini-batch size (1 = the paper's per-sample updates)")
	workers := flag.Int("workers", 0, "parallel workers for training/inference/eval (0 = all CPUs)")
	flag.Parse()
	defer prof.Start()()

	opts := eval.DefaultOptions()
	if *fast {
		opts = eval.FastOptions()
	}
	if *seed != 0 {
		opts.World.Seed = *seed
	}
	opts.SetParallelism(*batch, *workers)

	fmt.Printf("Building world (seed %d: %d tenants, %d sessions)...\n",
		opts.World.Seed, opts.World.NumTenants, opts.World.NumSessions)
	start := time.Now()
	h := eval.NewHarness(opts)
	fmt.Printf("World ready in %s: %d tags, %d RQs, %d graph edges\n\n",
		time.Since(start).Round(time.Millisecond), h.World.NumTags(), len(h.World.RQs), h.Graph.TotalEdges())

	want := func(name string) bool { return *run == "all" || strings.EqualFold(*run, name) }
	ran := false

	if want("tableII") {
		section("Table II", func() { fmt.Println(h.RunTableII()) })
		ran = true
	}
	if want("tableIII") {
		section("Table III (tag mining)", func() { fmt.Println(h.RunTableIII()) })
		ran = true
	}
	if want("tableIV") {
		section("Table IV (offline TagRec)", func() { fmt.Println(h.RunTableIV()) })
		ran = true
	}
	if want("tableV") {
		section("Table V (attention ablation)", func() { fmt.Println(h.RunTableV()) })
		ran = true
	}
	if want("fig5") {
		section("Figure 5 (attention case study)", func() { fmt.Println(h.RunFig5()) })
		ran = true
	}
	if want("fig6") {
		section("Figure 6 (hyperparameter sensitivity)", func() { fmt.Println(h.RunFig6()) })
		ran = true
	}
	if want("fig7") || want("tableVI") {
		section("Figure 7 + Table VI (online simulation)", func() {
			fig := h.RunFig7()
			fmt.Println(fig)
			fmt.Println(h.RunTableVI(fig))
		})
		ran = true
	}
	if *run == "extensions" {
		section("Extensions (beyond the paper)", func() {
			fmt.Println(h.RunMetapathAblation())
			fmt.Println(h.RunNegativeProtocolAblation())
			fmt.Println(h.RunTenantBreakdown())
			fmt.Println(h.RunDistillationSweep())
			fmt.Println(h.RunMatcherEval())
		})
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("Total: %s\n", time.Since(start).Round(time.Millisecond))
}

func section(name string, fn func()) {
	fmt.Printf("=== %s ===\n", name)
	start := time.Now()
	fn()
	fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
}
