// Command tagminer runs the offline tag mining pipeline of Section III:
// train the multi-task tagger on labeled RQ sentences, distill it into the
// compact student, extract candidate tags from the corpus, purify them with
// the rule filter, and print the resulting tag deposit.
//
// Usage:
//
//	tagminer [-fast] [-seed 1] [-top 30] [-distill] [-runlog mine.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"intellitag/internal/obs"
	"intellitag/internal/prof"
	"intellitag/internal/synth"
	"intellitag/internal/tagmining"
	"intellitag/internal/textproc"
)

func main() {
	fast := flag.Bool("fast", true, "use the small world")
	seed := flag.Int64("seed", 1, "world seed")
	top := flag.Int("top", 30, "number of mined tags to print")
	distill := flag.Bool("distill", true, "also distill and use the student for extraction")
	runlogPath := flag.String("runlog", "", "write structured JSONL run records to this file")
	flag.Parse()
	defer prof.Start()()

	var runlog *obs.RunLog
	if *runlogPath != "" {
		var err error
		runlog, err = obs.OpenRunLog(*runlogPath)
		if err != nil {
			log.Fatalf("open -runlog: %v", err)
		}
		defer func() {
			if err := runlog.Close(); err != nil {
				log.Printf("close -runlog: %v", err)
			}
		}()
	}

	cfg := synth.DefaultConfig()
	if *fast {
		cfg = synth.SmallConfig()
	}
	cfg.Seed = *seed
	world := synth.Generate(cfg)
	sentences := world.LabeledSentences()
	log.Printf("world: %d RQ sentences, %d true tags", len(sentences), world.NumTags())

	vocab := tagmining.BuildVocab(sentences)
	teacher := tagmining.NewModel(tagmining.TeacherConfig(), vocab)
	trainCfg := tagmining.DefaultTrainConfig()
	if runlog != nil {
		trainCfg.Observer = func(rec obs.EpochRecord) {
			if err := runlog.Record("epoch", rec); err != nil {
				log.Printf("runlog: %v", err)
			}
		}
	}
	start := time.Now()
	loss := tagmining.TrainMultiTask(teacher, sentences, trainCfg)
	log.Printf("teacher trained in %s (final loss %.3f, %d params)",
		time.Since(start).Round(time.Millisecond), loss, teacher.NumParams())

	var miner tagmining.Tagger = teacher
	if *distill {
		student := tagmining.NewModel(tagmining.StudentConfig(), vocab)
		start = time.Now()
		tagmining.Distill(teacher, student, sentences, trainCfg, 2.0, 0.5)
		log.Printf("student distilled in %s (%d params, %.1fx smaller)",
			time.Since(start).Round(time.Millisecond), student.NumParams(),
			float64(teacher.NumParams())/float64(student.NumParams()))
		miner = student
	}

	var tokens [][]string
	for _, s := range sentences {
		tokens = append(tokens, s.Tokens)
	}
	mined := tagmining.Extract(miner, tokens, 0.5)
	stats := textproc.NewCorpusStats(tokens, 5)
	filtered := tagmining.ApplyRules(mined, stats, tagmining.DefaultRuleConfig())
	log.Printf("mined %d candidates, %d survive rules", len(mined), len(filtered))
	if err := runlog.Record("mined", map[string]any{
		"candidates": len(mined), "filtered": len(filtered), "distilled": *distill,
	}); err != nil {
		log.Printf("runlog: %v", err)
	}

	fmt.Printf("\n%-30s %8s %8s %10s %8s\n", "Tag", "Count", "Weight", "RuleScore", "Real?")
	for i, t := range filtered {
		if i >= *top {
			break
		}
		real := "no"
		if world.TagIDByPhrase(t.Phrase) >= 0 {
			real = "yes"
		}
		fmt.Printf("%-30s %8d %8.3f %10.3f %8s\n", t.Phrase, t.Count, t.Weight, t.RuleScore, real)
	}
}
