package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The repo accumulates one BENCH_*.json per performance PR, in four shapes:
// `go test -bench` reports (BENCH_PR2), annbench recall/latency curve reports
// (BENCH_PR7), load-certification reports (BENCH_LOAD_*) and online-learning
// drill reports (BENCH_ONLINE_*). buildTrajectory merges any mix of them into
// one document so the perf trajectory across PRs is a single schema-checked
// artifact. Every structural defect is a hard error naming the file and the
// field — a malformed entry silently dropped would read as a regression-free
// trajectory.

// trajectorySchema identifies the merged document.
const trajectorySchema = "intellitag-trajectory/1"

// TrajectoryEntry is one validated BENCH file in the merged document.
type TrajectoryEntry struct {
	File    string `json:"file"`
	Kind    string `json:"kind"` // bench | annbench | load | online
	Summary string `json:"summary"`
	// Pass carries the load report's gate verdict; bench/annbench entries
	// have no gates and stay null.
	Pass   *bool           `json:"pass,omitempty"`
	Report json.RawMessage `json:"report"`
}

// Trajectory is the merged, schema-checked document.
type Trajectory struct {
	Schema  string            `json:"schema"`
	Note    string            `json:"note,omitempty"`
	Entries []TrajectoryEntry `json:"entries"`
}

// buildTrajectory reads, classifies and validates each file, in argument
// order (the PR order), and merges them.
func buildTrajectory(files []string) (*Trajectory, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("-trajectory needs BENCH_*.json arguments")
	}
	traj := &Trajectory{Schema: trajectorySchema}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		entry, err := validateEntry(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		entry.File = filepath.Base(path)
		entry.Report = json.RawMessage(data)
		traj.Entries = append(traj.Entries, entry)
	}
	return traj, nil
}

// validateEntry classifies one report by shape and checks the invariants of
// its schema.
func validateEntry(data []byte) (TrajectoryEntry, error) {
	var probe struct {
		Schema     string          `json:"schema"`
		Benchmarks json.RawMessage `json:"benchmarks"`
		Curves     json.RawMessage `json:"curves"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("not a JSON object: %v", err)
	}
	switch {
	case probe.Schema != "":
		// Self-identifying reports dispatch on the schema string.
		switch probe.Schema {
		case "intellitag-load/1":
			return validateLoad(data)
		case "intellitag-online/1":
			return validateOnline(data)
		}
		return TrajectoryEntry{}, fmt.Errorf("unknown schema %q (want intellitag-load/1 or intellitag-online/1)", probe.Schema)
	case probe.Benchmarks != nil:
		return validateBench(data)
	case probe.Curves != nil:
		return validateCurves(data)
	}
	return TrajectoryEntry{}, fmt.Errorf("unrecognized report shape: no schema, benchmarks or curves key")
}

func validateBench(data []byte) (TrajectoryEntry, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("bench report: %v", err)
	}
	if len(r.Benchmarks) == 0 {
		return TrajectoryEntry{}, fmt.Errorf("bench report: benchmarks is empty")
	}
	names := make([]string, 0, len(r.Benchmarks))
	for name := range r.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := r.Benchmarks[name]
		if b.Iters <= 0 {
			return TrajectoryEntry{}, fmt.Errorf("bench report: %s: iters %d", name, b.Iters)
		}
		if b.NsPerOp <= 0 {
			return TrajectoryEntry{}, fmt.Errorf("bench report: %s: ns_per_op %g", name, b.NsPerOp)
		}
	}
	return TrajectoryEntry{
		Kind:    "bench",
		Summary: fmt.Sprintf("%d benchmarks, %d baselined", len(r.Benchmarks), len(r.Improvement)),
	}, nil
}

func validateCurves(data []byte) (TrajectoryEntry, error) {
	var r struct {
		Curves []struct {
			Size       int     `json:"size"`
			Backend    string  `json:"backend"`
			Recall     float64 `json:"recall_at_10"`
			NsPerQuery float64 `json:"ns_per_query"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("curve report: %v", err)
	}
	if len(r.Curves) == 0 {
		return TrajectoryEntry{}, fmt.Errorf("curve report: curves is empty")
	}
	for i, c := range r.Curves {
		if c.Size <= 0 || c.Backend == "" {
			return TrajectoryEntry{}, fmt.Errorf("curve report: curve %d: size %d backend %q", i, c.Size, c.Backend)
		}
		if c.Recall < 0 || c.Recall > 1 {
			return TrajectoryEntry{}, fmt.Errorf("curve report: curve %d: recall_at_10 %g outside [0,1]", i, c.Recall)
		}
		if c.NsPerQuery <= 0 {
			return TrajectoryEntry{}, fmt.Errorf("curve report: curve %d: ns_per_query %g", i, c.NsPerQuery)
		}
	}
	return TrajectoryEntry{
		Kind:    "annbench",
		Summary: fmt.Sprintf("%d recall/latency curve points", len(r.Curves)),
	}, nil
}

func validateLoad(data []byte) (TrajectoryEntry, error) {
	var r struct {
		Schema string `json:"schema"`
		Pass   *bool  `json:"pass"`
		Steps  []struct {
			Concurrency int     `json:"concurrency"`
			Requests    int64   `json:"requests"`
			AchievedQPS float64 `json:"achieved_qps"`
			P50Ms       float64 `json:"p50_ms"`
			P95Ms       float64 `json:"p95_ms"`
			P99Ms       float64 `json:"p99_ms"`
			Gates       []struct {
				Gate string `json:"gate"`
			} `json:"gates"`
		} `json:"steps"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("load report: %v", err)
	}
	if r.Schema != "intellitag-load/1" {
		return TrajectoryEntry{}, fmt.Errorf("load report: unknown schema %q", r.Schema)
	}
	if r.Pass == nil {
		return TrajectoryEntry{}, fmt.Errorf("load report: missing pass verdict")
	}
	if len(r.Steps) == 0 {
		return TrajectoryEntry{}, fmt.Errorf("load report: steps is empty")
	}
	for i, s := range r.Steps {
		if s.Concurrency < 1 {
			return TrajectoryEntry{}, fmt.Errorf("load report: step %d: concurrency %d", i, s.Concurrency)
		}
		if s.Requests <= 0 || s.AchievedQPS <= 0 {
			return TrajectoryEntry{}, fmt.Errorf("load report: step %d did no work: requests %d, qps %g", i, s.Requests, s.AchievedQPS)
		}
		if s.P50Ms > s.P95Ms || s.P95Ms > s.P99Ms {
			return TrajectoryEntry{}, fmt.Errorf("load report: step %d: non-monotone percentiles p50=%g p95=%g p99=%g", i, s.P50Ms, s.P95Ms, s.P99Ms)
		}
		if len(s.Gates) == 0 {
			return TrajectoryEntry{}, fmt.Errorf("load report: step %d has no gates", i)
		}
		for j, g := range s.Gates {
			if g.Gate == "" {
				return TrajectoryEntry{}, fmt.Errorf("load report: step %d gate %d is unnamed", i, j)
			}
		}
	}
	return TrajectoryEntry{
		Kind:    "load",
		Pass:    r.Pass,
		Summary: fmt.Sprintf("%d load steps, gates pass=%v", len(r.Steps), *r.Pass),
	}, nil
}

func validateOnline(data []byte) (TrajectoryEntry, error) {
	var r struct {
		Schema       string `json:"schema"`
		Pass         *bool  `json:"pass"`
		Days         int    `json:"days"`
		DriftFromDay int    `json:"drift_from_day"`
		DrillDay     int    `json:"drill_day"`
		DayStats     []struct {
			Day       int     `json:"day"`
			CTRFrozen float64 `json:"ctr_frozen"`
			CTROnline float64 `json:"ctr_online"`
			Verdict   string  `json:"verdict"`
			Active    string  `json:"active"`
		} `json:"day_stats"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
		Summary struct {
			Finetunes   int64 `json:"finetunes"`
			GateBlocked int64 `json:"gate_blocked"`
			Rollbacks   int64 `json:"rollbacks"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("online report: %v", err)
	}
	if r.Pass == nil {
		return TrajectoryEntry{}, fmt.Errorf("online report: missing pass verdict")
	}
	if r.Days < 1 || len(r.DayStats) != r.Days {
		return TrajectoryEntry{}, fmt.Errorf("online report: days %d but %d day_stats entries", r.Days, len(r.DayStats))
	}
	if r.DriftFromDay < 1 || r.DriftFromDay > r.Days || r.DrillDay < r.DriftFromDay || r.DrillDay > r.Days {
		return TrajectoryEntry{}, fmt.Errorf("online report: drift day %d / drill day %d outside run of %d days", r.DriftFromDay, r.DrillDay, r.Days)
	}
	for i, d := range r.DayStats {
		if d.Day != i+1 {
			return TrajectoryEntry{}, fmt.Errorf("online report: day_stats[%d] is day %d, want %d", i, d.Day, i+1)
		}
		if d.CTRFrozen < 0 || d.CTRFrozen > 1 || d.CTROnline < 0 || d.CTROnline > 1 {
			return TrajectoryEntry{}, fmt.Errorf("online report: day %d CTR outside [0,1]: frozen %g online %g", d.Day, d.CTRFrozen, d.CTROnline)
		}
		if d.Verdict == "" || d.Active == "" {
			return TrajectoryEntry{}, fmt.Errorf("online report: day %d missing verdict or active version", d.Day)
		}
	}
	if len(r.Events) == 0 {
		return TrajectoryEntry{}, fmt.Errorf("online report: events is empty")
	}
	if r.Summary.Finetunes < 1 {
		return TrajectoryEntry{}, fmt.Errorf("online report: no fine-tune rounds recorded")
	}
	return TrajectoryEntry{
		Kind: "online",
		Pass: r.Pass,
		Summary: fmt.Sprintf("%d days (drift day %d, drill day %d), %d finetunes, %d blocked, %d rollbacks, pass=%v",
			r.Days, r.DriftFromDay, r.DrillDay, r.Summary.Finetunes, r.Summary.GateBlocked, r.Summary.Rollbacks, *r.Pass),
	}, nil
}
