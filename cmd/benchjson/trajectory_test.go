package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodBench = `{"benchmarks":{"PR2_MatMul":{"iters":100,"ns_per_op":987,"b_per_op":0,"allocs_per_op":3}}}`
const goodCurves = `{"curves":[{"size":1000,"backend":"lsh","recall_at_10":0.99,"ns_per_query":28601}]}`
const goodLoad = `{"schema":"intellitag-load/1","pass":true,"steps":[{"concurrency":4,"requests":100,` +
	`"achieved_qps":50,"p50_ms":1,"p95_ms":2,"p99_ms":3,"gates":[{"gate":"max_error_rate","pass":true}]}]}`
const goodOnline = `{"schema":"intellitag-online/1","pass":true,"days":2,"drift_from_day":1,"drill_day":2,` +
	`"day_stats":[{"day":1,"ctr_frozen":0.3,"ctr_online":0.3,"verdict":"indeterminate","active":"v0000-aa"},` +
	`{"day":2,"ctr_frozen":0.2,"ctr_online":0.25,"verdict":"healthy","active":"v0001-bb"}],` +
	`"events":[{"kind":"finetune"},{"kind":"rollback"}],` +
	`"summary":{"finetunes":2,"gate_blocked":1,"rollbacks":1}}`

func TestTrajectoryMergesAllSchemas(t *testing.T) {
	files := []string{
		writeFile(t, "BENCH_PR2.json", goodBench),
		writeFile(t, "BENCH_PR7.json", goodCurves),
		writeFile(t, "BENCH_LOAD_PR9.json", goodLoad),
		writeFile(t, "BENCH_ONLINE_PR10.json", goodOnline),
	}
	traj, err := buildTrajectory(files)
	if err != nil {
		t.Fatalf("buildTrajectory: %v", err)
	}
	if traj.Schema != trajectorySchema || len(traj.Entries) != 4 {
		t.Fatalf("trajectory shape wrong: %+v", traj)
	}
	kinds := []string{"bench", "annbench", "load", "online"}
	for i, e := range traj.Entries {
		if e.Kind != kinds[i] {
			t.Errorf("entry %d kind %q, want %q", i, e.Kind, kinds[i])
		}
		if len(e.Report) == 0 || e.Summary == "" {
			t.Errorf("entry %d lost its report or summary: %+v", i, e)
		}
	}
	if traj.Entries[2].Pass == nil || !*traj.Entries[2].Pass {
		t.Errorf("load entry lost its gate verdict: %+v", traj.Entries[2])
	}
	if traj.Entries[3].Pass == nil || !*traj.Entries[3].Pass {
		t.Errorf("online entry lost its drill verdict: %+v", traj.Entries[3])
	}
	if traj.Entries[0].Pass != nil {
		t.Errorf("bench entry fabricated a gate verdict: %+v", traj.Entries[0])
	}
}

// TestTrajectoryFailsLoudly pins the hard-error contract: every malformed
// shape is rejected with the offending file in the message, never skipped.
func TestTrajectoryFailsLoudly(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"notjson.json", `{`, "not a JSON object"},
		{"unknown.json", `{"something":1}`, "unrecognized report shape"},
		{"emptybench.json", `{"benchmarks":{}}`, "benchmarks is empty"},
		{"badbench.json", `{"benchmarks":{"X":{"iters":0,"ns_per_op":5}}}`, "iters"},
		{"badcurve.json", `{"curves":[{"size":10,"backend":"lsh","recall_at_10":1.5,"ns_per_query":1}]}`, "outside [0,1]"},
		{"badschema.json", `{"schema":"intellitag-load/9","pass":true,"steps":[]}`, "unknown schema"},
		{"nopass.json", `{"schema":"intellitag-load/1","steps":[{"concurrency":1,"requests":1,"achieved_qps":1,"gates":[{"gate":"g"}]}]}`, "missing pass"},
		{"nosteps.json", `{"schema":"intellitag-load/1","pass":true,"steps":[]}`, "steps is empty"},
		{"idle.json", `{"schema":"intellitag-load/1","pass":true,"steps":[{"concurrency":1,"requests":0,"achieved_qps":0,"gates":[{"gate":"g"}]}]}`, "did no work"},
		{"nonmono.json", `{"schema":"intellitag-load/1","pass":true,"steps":[{"concurrency":1,"requests":5,"achieved_qps":1,"p50_ms":9,"p95_ms":2,"p99_ms":3,"gates":[{"gate":"g"}]}]}`, "non-monotone"},
		{"nogates.json", `{"schema":"intellitag-load/1","pass":true,"steps":[{"concurrency":1,"requests":5,"achieved_qps":1,"gates":[]}]}`, "no gates"},
		{"onlinenopass.json", `{"schema":"intellitag-online/1","days":1,"drift_from_day":1,"drill_day":1,` +
			`"day_stats":[{"day":1,"ctr_frozen":0.1,"ctr_online":0.1,"verdict":"healthy","active":"v0"}],` +
			`"events":[{"kind":"finetune"}],"summary":{"finetunes":1}}`, "missing pass"},
		{"onlinedaygap.json", `{"schema":"intellitag-online/1","pass":true,"days":2,"drift_from_day":1,"drill_day":2,` +
			`"day_stats":[{"day":1,"ctr_frozen":0.1,"ctr_online":0.1,"verdict":"healthy","active":"v0"}],` +
			`"events":[{"kind":"finetune"}],"summary":{"finetunes":1}}`, "day_stats"},
		{"onlinebadctr.json", `{"schema":"intellitag-online/1","pass":true,"days":1,"drift_from_day":1,"drill_day":1,` +
			`"day_stats":[{"day":1,"ctr_frozen":1.5,"ctr_online":0.1,"verdict":"healthy","active":"v0"}],` +
			`"events":[{"kind":"finetune"}],"summary":{"finetunes":1}}`, "outside [0,1]"},
		{"onlinebaddrill.json", `{"schema":"intellitag-online/1","pass":true,"days":1,"drift_from_day":1,"drill_day":9,` +
			`"day_stats":[{"day":1,"ctr_frozen":0.1,"ctr_online":0.1,"verdict":"healthy","active":"v0"}],` +
			`"events":[{"kind":"finetune"}],"summary":{"finetunes":1}}`, "drill day"},
		{"onlineidle.json", `{"schema":"intellitag-online/1","pass":true,"days":1,"drift_from_day":1,"drill_day":1,` +
			`"day_stats":[{"day":1,"ctr_frozen":0.1,"ctr_online":0.1,"verdict":"healthy","active":"v0"}],` +
			`"events":[{"kind":"finetune"}],"summary":{"finetunes":0}}`, "no fine-tune rounds"},
	}
	for _, tc := range cases {
		path := writeFile(t, tc.name, tc.content)
		_, err := buildTrajectory([]string{writeFile(t, "ok.json", goodBench), path})
		if err == nil {
			t.Errorf("%s: accepted malformed report", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) || !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error %q does not name the file and defect %q", tc.name, err, tc.wantErr)
		}
	}

	if _, err := buildTrajectory(nil); err == nil {
		t.Error("no arguments accepted")
	}
	if _, err := buildTrajectory([]string{filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTrajectoryValidatesRealRepoFiles(t *testing.T) {
	files := []string{"../../BENCH_PR2.json", "../../BENCH_PR7.json", "../../BENCH_LOAD_PR9.json", "../../BENCH_ONLINE_PR10.json"}
	wantKinds := []string{"bench", "annbench", "load", "online"}
	for _, f := range files {
		if _, err := os.Stat(f); err != nil {
			t.Skipf("repo BENCH files not present: %v", err)
		}
	}
	traj, err := buildTrajectory(files)
	if err != nil {
		t.Fatalf("committed BENCH files fail validation: %v", err)
	}
	for i, e := range traj.Entries {
		if e.Kind != wantKinds[i] {
			t.Fatalf("committed BENCH files misclassified: %+v", traj.Entries)
		}
	}
}
