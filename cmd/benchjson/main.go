// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a stable JSON document, optionally merging a previously recorded
// baseline file and computing improvement ratios against it. It is the
// serialization half of `make bench`: the benchmarks themselves measure the
// hot paths, this tool turns their one-line results into BENCH_*.json files
// that successive PRs can diff.
//
// Usage:
//
//	go test -run xxx -bench PR2 -benchmem ./... | benchjson -o BENCH_PR2.json -baseline BENCH_PR2_BASELINE.json
//
// With -trajectory it instead validates and merges already-written BENCH_*
// files — the bench reports above, annbench curve reports (BENCH_PR7) and
// load-certification reports (BENCH_LOAD_*) — into one schema-checked
// trajectory document, failing loudly on any malformed entry:
//
//	benchjson -trajectory -o TRAJECTORY.json BENCH_PR2.json BENCH_PR7.json BENCH_LOAD_PR9.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measured costs.
type Result struct {
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Ratio reports baseline/current for the two costs the acceptance criteria
// track; values above 1 mean the current run is cheaper.
type Ratio struct {
	Ns     float64 `json:"ns"`
	Allocs float64 `json:"allocs"`
}

// Report is the emitted JSON document.
type Report struct {
	Note        string            `json:"note,omitempty"`
	Benchmarks  map[string]Result `json:"benchmarks"`
	Baseline    map[string]Result `json:"baseline,omitempty"`
	Improvement map[string]Ratio  `json:"improvement,omitempty"`
}

// benchLine matches e.g.
// BenchmarkPR2_MatMul-8   12345   987 ns/op   1024 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to embed and compare against")
	note := flag.String("note", "", "free-form note stored in the report")
	trajectory := flag.Bool("trajectory", false, "validate and merge BENCH_*.json arguments into one trajectory document")
	flag.Parse()

	if *trajectory {
		traj, err := buildTrajectory(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		traj.Note = *note
		emit(traj, *out)
		return
	}

	report := Report{Note: *note, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		iters, _ := strconv.Atoi(m[2])
		r := Result{Iters: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		report.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		report.Baseline = base.Benchmarks
		report.Improvement = map[string]Ratio{}
		for name, cur := range report.Benchmarks {
			b, ok := base.Benchmarks[name]
			if !ok {
				continue
			}
			report.Improvement[name] = Ratio{
				Ns:     ratio(b.NsPerOp, cur.NsPerOp),
				Allocs: ratio(b.AllocsPerOp, cur.AllocsPerOp),
			}
		}
	}

	emit(report, *out)
}

// emit writes v as indented JSON to out, or stdout when out is empty.
func emit(v any, out string) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchjson: wrote", out)
}

func ratio(base, cur float64) float64 {
	if cur == 0 {
		if base == 0 {
			return 1
		}
		return base // fully eliminated; report the raw baseline magnitude
	}
	return base / cur
}
