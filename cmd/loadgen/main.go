// Command loadgen is the load-certification harness (ROADMAP item 4): a
// closed-loop, coordinated-omission-aware generator that drives the
// intellitag-server HTTP API through a concurrency sweep, checks declarative
// SLO gates per step — including zero dropped requests across a mid-step
// rolling model swap — and writes the latency/throughput curve as a
// BENCH_LOAD json.
//
// Usage:
//
//	loadgen [-o BENCH_LOAD_PR9.json] [-steps 1,4,8] [-duration 2s] [-qps 0]
//	        [-swap-step 2] [-trace FILE] [-model popularity|intellitag]
//	        [-addr http://host:port] [-seed 1] [-replicas 2]
//	        [-max-p99-ms 0] [-min-qps 0] [-max-error-rate 0] [-max-server-p99-ms 0]
//
// Without -addr, loadgen starts an in-process server (same setup as
// intellitag-server -fast) on a loopback port and certifies that; -swap-step
// then performs the rolling swap directly on the replica set. With -addr it
// drives an external server and swaps via POST /admin/swap. Traffic is the
// synthetic click → recommend session mix by default, or a recorded httprr
// trace with -trace (record one with: simulate -record FILE).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"intellitag/internal/core"
	"intellitag/internal/load"
	"intellitag/internal/obs"
	"intellitag/internal/search"
	"intellitag/internal/serving"
	"intellitag/internal/store"
	"intellitag/internal/synth"
)

func main() {
	addr := flag.String("addr", "", "external target base URL; empty starts an in-process server")
	model := flag.String("model", "popularity", "in-process scorer: popularity or intellitag")
	seed := flag.Int64("seed", 1, "world seed (must match the target's for synthetic traffic)")
	fast := flag.Bool("fast", true, "use the small world")
	replicas := flag.Int("replicas", 2, "in-process engine replicas (swap needs >= 2 to roll)")
	stepsFlag := flag.String("steps", "1,4,8", "comma-separated concurrency steps")
	qps := flag.Float64("qps", 0, "target request rate per step; 0 = closed loop")
	duration := flag.Duration("duration", 2*time.Second, "measured duration per step")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "untimed warmup before the first step")
	swapStep := flag.Int("swap-step", 0, "1-based step that performs a rolling swap mid-step (0 disables)")
	trace := flag.String("trace", "", "httprr trace file to replay as traffic instead of synthetic sessions")
	k := flag.Int("k", 5, "top-k per synthetic request")
	maxP99 := flag.Float64("max-p99-ms", 0, "SLO: client-side p99 ceiling in ms (0 disables)")
	minQPS := flag.Float64("min-qps", 0, "SLO: achieved-throughput floor (0 disables)")
	maxErrRate := flag.Float64("max-error-rate", 0, "SLO: (errors+dropped)/requests ceiling (always enforced)")
	maxServerP99 := flag.Float64("max-server-p99-ms", 0, "SLO: server-reported route p99 ceiling in ms (0 disables)")
	out := flag.String("o", "BENCH_LOAD_PR9.json", "report output path")
	note := flag.String("note", "", "free-form note recorded in the report")
	flag.Parse()

	steps, err := parseSteps(*stepsFlag, *qps, *duration, *swapStep)
	if err != nil {
		log.Fatal(err)
	}

	// The synthetic world is generated either way: in-process it backs the
	// server; against -addr it supplies the tenant/tag universe for synthetic
	// traffic (the target must be an intellitag-server on the same seed).
	worldCfg := synth.DefaultConfig()
	if *fast {
		worldCfg = synth.SmallConfig()
	}
	worldCfg.Seed = *seed
	world := synth.Generate(worldCfg)
	train, _, _ := world.SplitSessions(0.9, 0.05)
	catalog, index := serving.BuildCatalog(world, train)

	opts := load.Options{
		Warmup:  *warmup,
		SLO:     load.SLO{MaxP99Ms: *maxP99, MinQPS: *minQPS, MaxErrorRate: *maxErrRate, MaxServerP99Ms: *maxServerP99},
		Note:    *note,
		Timeout: 30 * time.Second,
	}

	if *trace != "" {
		src, err := load.NewTraceSource(*trace)
		if err != nil {
			log.Fatalf("load -trace: %v", err)
		}
		opts.Source = src
	} else {
		opts.Source = syntheticFromCatalog(catalog, *seed, *k)
	}

	if *addr != "" {
		opts.BaseURL = strings.TrimRight(*addr, "/")
		opts.Swap = func() (string, error) { return adminSwap(opts.BaseURL) }
	} else {
		makeBundle := bundleBuilder(*model, world, train, catalog, index)
		rs := serving.NewReplicaSet(makeBundle("v0001-loadgen"), *replicas, 0, store.NewLog(), nil)
		server := serving.NewServer(serving.NewReplicatedABRouter(rs))
		server.EnableTelemetry(obs.NewRegistry(), obs.NewTracer(64, 256))
		hostport, err := obs.ServeBackground("127.0.0.1:0", server)
		if err != nil {
			log.Fatalf("start in-process server: %v", err)
		}
		opts.BaseURL = "http://" + hostport
		opts.Swap = func() (string, error) {
			// A fresh bundle (fresh scorer state) rolled across the replicas
			// while the workers keep hammering the API.
			b := makeBundle("v0002-loadgen")
			rs.RollingSwap(b, 10*time.Millisecond)
			return b.VersionID, nil
		}
		log.Printf("in-process %s server on %s (%d replicas)", *model, opts.BaseURL, *replicas)
	}

	log.Printf("sweep: steps=%s qps=%g duration=%s swap-step=%d source=%s",
		*stepsFlag, *qps, *duration, *swapStep, opts.Source.Name())
	report, err := load.Run(opts, steps)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Write(*out); err != nil {
		log.Fatal(err)
	}
	printSummary(report)
	fmt.Printf("report: %s\n", *out)
	if !report.Pass {
		os.Exit(1)
	}
}

// parseSteps turns "1,4,8" into the sweep, arming the swap on the chosen step.
func parseSteps(spec string, qps float64, d time.Duration, swapStep int) ([]load.StepConfig, error) {
	parts := strings.Split(spec, ",")
	steps := make([]load.StepConfig, 0, len(parts))
	for _, p := range parts {
		c, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("loadgen: bad -steps entry %q", p)
		}
		steps = append(steps, load.StepConfig{Concurrency: c, QPS: qps, Duration: d})
	}
	if swapStep != 0 {
		if swapStep < 1 || swapStep > len(steps) {
			return nil, fmt.Errorf("loadgen: -swap-step %d outside 1..%d", swapStep, len(steps))
		}
		steps[swapStep-1].Swap = true
	}
	return steps, nil
}

// syntheticFromCatalog shapes the synthetic source after the serving catalog:
// every tenant with tags contributes its real tag universe.
func syntheticFromCatalog(catalog serving.Catalog, seed int64, k int) *load.SyntheticSource {
	tenants := make([]int, 0, len(catalog.TenantTags))
	for t := range catalog.TenantTags {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)
	src := &load.SyntheticSource{Seed: seed, K: k, ClicksPerSession: 3}
	for _, t := range tenants {
		if tags := catalog.TenantTags[t]; len(tags) > 0 {
			src.Tenants = append(src.Tenants, load.TenantTraffic{Tenant: t, Tags: tags})
		}
	}
	if len(src.Tenants) == 0 {
		log.Fatal("loadgen: catalog has no tenants with tags")
	}
	return src
}

// bundleBuilder returns a factory making one fresh serving bundle per call —
// fresh scorer state per version, as the swap protocol requires.
func bundleBuilder(model string, world *synth.World, train []synth.Session, catalog serving.Catalog, index *search.Index) func(string) *serving.ModelBundle {
	switch model {
	case "popularity":
		return func(version string) *serving.ModelBundle {
			return &serving.ModelBundle{VersionID: version, Catalog: catalog, Index: index, Scorer: popScorer{catalog.Popularity}}
		}
	case "intellitag":
		graph := world.BuildGraph(train)
		var clicks [][]int
		for _, s := range train {
			clicks = append(clicks, s.Clicks)
		}
		prefixes := core.ExpandPrefixes(clicks)
		recCfg := core.DefaultConfig()
		recCfg.Dim, recCfg.Heads = 16, 2
		tc := core.DefaultTrainConfig()
		tc.Epochs, tc.JointEpochs = 1, 1
		return func(version string) *serving.ModelBundle {
			start := time.Now()
			m := core.Build(recCfg, graph, nil)
			core.TrainFull(m, graph, prefixes, tc)
			m.Freeze()
			log.Printf("trained TagRec bundle %s in %s", version, time.Since(start).Round(time.Millisecond))
			return &serving.ModelBundle{VersionID: version, Catalog: catalog, Index: index, Scorer: m}
		}
	default:
		log.Fatalf("loadgen: unknown -model %q (popularity or intellitag)", model)
		return nil
	}
}

// popScorer ranks by global popularity (the cold-start fallback as a
// standalone serving model — instant to "train", ideal for short runs).
type popScorer struct{ pop []float64 }

// ScoreCandidates implements serving.Scorer.
func (p popScorer) ScoreCandidates(history, candidates []int) []float64 {
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.pop[c]
	}
	return out
}

// Name implements serving.Scorer.
func (p popScorer) Name() string { return "popularity" }

// adminSwap flips an external server to its latest snapshot via the hot-swap
// control plane and reports the version now serving.
func adminSwap(base string) (string, error) {
	resp, err := http.Post(base+"/admin/swap", "application/json", strings.NewReader("{}"))
	if err != nil {
		return "", err
	}
	defer func() {
		_ = resp.Body.Close() // read side; nothing to recover from on close failure
	}()
	var body struct {
		Buckets []struct {
			Replicas []serving.VersionInfo `json:"replicas"`
		} `json:"buckets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", fmt.Errorf("loadgen: decode /admin/swap response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("loadgen: /admin/swap status %d", resp.StatusCode)
	}
	if len(body.Buckets) == 0 || len(body.Buckets[0].Replicas) == 0 {
		return "", fmt.Errorf("loadgen: /admin/swap reported no versions")
	}
	return body.Buckets[0].Replicas[0].ID, nil
}

// printSummary renders the per-step curve and gate verdicts.
func printSummary(r *load.Report) {
	fmt.Printf("%-5s %6s %9s %9s %9s %9s %8s %7s %7s %s\n",
		"conc", "qps*", "achieved", "p50ms", "p95ms", "p99ms", "maxms", "errs", "drop", "gates")
	for _, s := range r.Steps {
		verdicts := make([]string, 0, len(s.Gates))
		for _, g := range s.Gates {
			mark := "ok"
			if !g.Pass {
				mark = "FAIL"
			}
			verdicts = append(verdicts, g.Gate+"="+mark)
		}
		swap := ""
		if s.Swap != nil {
			swap = " [swap->" + s.Swap.Version + "]"
		}
		fmt.Printf("%-5d %6g %9.1f %9.3f %9.3f %9.3f %8.1f %7d %7d %s%s\n",
			s.Concurrency, s.TargetQPS, s.AchievedQPS, s.P50Ms, s.P95Ms, s.P99Ms,
			s.MaxMs, s.Errors, s.Dropped, strings.Join(verdicts, " "), swap)
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("certification: %s (%d steps, source %s)\n", verdict, len(r.Steps), r.Source)
}
