// Command annbench measures the retrieve-then-rank stack end to end and
// writes BENCH_PR7.json: recall@K-vs-latency curves for both ANN backends
// against brute force at each -sizes point, and the serving hot path
// (Engine.Click → recommendTags) with exhaustive scoring vs ANN candidate
// retrieval, including allocs/op. The acceptance block at the end asserts the
// PR's bar — ANN-backed recommendation ≥ 10x cheaper than exhaustive at
// 10^5+ tags with recall@10 ≥ 0.95 on at least one backend.
//
// Usage:
//
//	go run ./cmd/annbench -sizes 100000,1000000 -o BENCH_PR7.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"intellitag/internal/ann"
	"intellitag/internal/mat"
	"intellitag/internal/search"
	"intellitag/internal/serving"
	"intellitag/internal/synth"
)

type curvePoint struct {
	Size       int     `json:"size"`
	Backend    string  `json:"backend"`
	Params     string  `json:"params"`
	BuildMs    float64 `json:"build_ms,omitempty"`
	RecallAt10 float64 `json:"recall_at_10"`
	NsPerQuery int64   `json:"ns_per_query"`
	Queries    int     `json:"queries_sampled"`
}

type servePoint struct {
	Mode        string  `json:"mode"`
	Tags        int     `json:"tags"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	SearchNs    int64   `json:"retriever_search_ns_per_op,omitempty"`
	SearchAlloc float64 `json:"retriever_search_allocs_per_op,omitempty"`
}

type report struct {
	GeneratedUnix int64        `json:"generated_unix"`
	Dim           int          `json:"dim"`
	K             int          `json:"k"`
	Clusters      string       `json:"clusters"`
	Curves        []curvePoint `json:"curves"`
	ServePath     []servePoint `json:"serve_path"`
	Acceptance    struct {
		ServeTags      int     `json:"serve_tags"`
		SpeedupHNSW    float64 `json:"speedup_hnsw"`
		SpeedupLSH     float64 `json:"speedup_lsh"`
		BestRecallAt10 float64 `json:"best_recall_at_10"`
		Pass           bool    `json:"pass"`
	} `json:"acceptance"`
}

// sampleQueries picks ~want evenly spaced row ids.
func sampleQueries(n, want int) []int {
	step := n / want
	if step < 1 {
		step = 1
	}
	out := make([]int, 0, want)
	for id := 0; id < n && len(out) < want; id += step {
		out = append(out, id)
	}
	return out
}

// measureQueries times SearchInto over the sampled queries with a warm
// scratch.
func measureQueries(r ann.Retriever, vecs *mat.Matrix, ids []int, k int) int64 {
	sc := ann.NewScratch()
	r.SearchInto(sc, vecs.Row(ids[0]), k, ids[0]) // warm
	start := time.Now()
	for _, id := range ids {
		r.SearchInto(sc, vecs.Row(id), k, id)
	}
	return time.Since(start).Nanoseconds() / int64(len(ids))
}

// measureExact times brute-force float search over the sampled queries.
func measureExact(vecs *mat.Matrix, ids []int, k int) int64 {
	start := time.Now()
	for _, id := range ids {
		ann.Exact(vecs, vecs.Row(id), k, id)
	}
	return time.Since(start).Nanoseconds() / int64(len(ids))
}

func runCurves(rep *report, n, dim, k int) {
	clusters := n / 100
	if clusters < 10 {
		clusters = 10
	}
	log.Printf("size %d: generating %d clustered vectors (dim %d)", n, n, dim)
	vecs := synth.TagVecs(n, dim, clusters, 0.08, 61)
	// Recall sampling is the expensive part (one brute-force scan per sampled
	// query); latency sampling reuses more queries since SearchInto is cheap.
	recallIDs := n / 64
	if recallIDs > 20000 {
		recallIDs = 20000
	}
	latIDs := sampleQueries(n, 512)

	exactNs := measureExact(vecs, sampleQueries(n, 48), k)
	rep.Curves = append(rep.Curves, curvePoint{
		Size: n, Backend: "exact", Params: "brute-force float64",
		RecallAt10: 1, NsPerQuery: exactNs, Queries: 48,
	})
	log.Printf("size %d: exact %d ns/query", n, exactNs)

	type lshCfg struct{ bits, tables int }
	for _, c := range []lshCfg{{12, 4}, {12, 8}, {14, 8}, {14, 16}} {
		start := time.Now()
		ix := ann.Build(vecs, ann.Config{Bits: c.bits, Tables: c.tables, Seed: 61})
		buildMs := float64(time.Since(start).Milliseconds())
		recall := ix.RecallAtK(k, recallIDs)
		ns := measureQueries(ix, vecs, latIDs, k)
		rep.Curves = append(rep.Curves, curvePoint{
			Size: n, Backend: "lsh", Params: fmt.Sprintf("bits=%d tables=%d", c.bits, c.tables),
			BuildMs: buildMs, RecallAt10: recall, NsPerQuery: ns, Queries: len(latIDs),
		})
		log.Printf("size %d: lsh %s recall@%d=%.3f %d ns/query (build %.0fms)",
			n, rep.Curves[len(rep.Curves)-1].Params, k, recall, ns, buildMs)
		if recall > rep.Acceptance.BestRecallAt10 {
			rep.Acceptance.BestRecallAt10 = recall
		}
	}

	start := time.Now()
	g := ann.BuildGraph(vecs, ann.DefaultGraphConfig())
	buildMs := float64(time.Since(start).Milliseconds())
	log.Printf("size %d: hnsw build %.0fms", n, buildMs)
	for _, ef := range []int{32, 64, 128, 256} {
		view := g.WithEfSearch(ef)
		recall := view.RecallAtK(k, recallIDs)
		ns := measureQueries(view, vecs, latIDs, k)
		pt := curvePoint{
			Size: n, Backend: "hnsw", Params: fmt.Sprintf("M=12 efc=80 ef=%d", ef),
			RecallAt10: recall, NsPerQuery: ns, Queries: len(latIDs),
		}
		if ef == 32 {
			pt.BuildMs = buildMs // build paid once for every ef view
		}
		rep.Curves = append(rep.Curves, pt)
		log.Printf("size %d: hnsw ef=%d recall@%d=%.3f %d ns/query", n, ef, k, recall, ns)
		if recall > rep.Acceptance.BestRecallAt10 {
			rep.Acceptance.BestRecallAt10 = recall
		}
	}
}

// dotScorer is the serving-side stand-in for a frozen model: it ranks
// candidates by the dot product of the recent-history centroid against each
// candidate's embedding and exposes the table for ANN retrieval.
type dotScorer struct{ emb *mat.Matrix }

func (s dotScorer) ScoreCandidates(history, candidates []int) []float64 {
	q := make([]float64, s.emb.Cols)
	recent := history
	if len(recent) > 8 {
		recent = recent[len(recent)-8:]
	}
	for _, tag := range recent {
		if tag >= 0 && tag < s.emb.Rows {
			for j, x := range s.emb.Row(tag) {
				q[j] += x
			}
		}
	}
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = mat.Dot(q, s.emb.Row(c))
	}
	return out
}
func (s dotScorer) Name() string               { return "dot" }
func (s dotScorer) TagEmbeddings() *mat.Matrix { return s.emb }

// buildEngine assembles an n-tag single-tenant engine, optionally with ANN
// retrieval.
func buildEngine(emb *mat.Matrix, backend string) *serving.Engine {
	n := emb.Rows
	cat := serving.Catalog{
		TagPhrases: make([]string, n),
		TenantTags: map[int][]int{0: make([]int, n)},
		Popularity: make([]float64, n),
		RQAnswers:  map[int]string{},
	}
	for i := 0; i < n; i++ {
		cat.TagPhrases[i] = "tag-" + strconv.Itoa(i)
		cat.TenantTags[0][i] = i
		cat.Popularity[i] = float64(n - i)
	}
	e := serving.NewEngine(cat, search.NewIndex(), dotScorer{emb: emb}, nil, nil)
	if backend != "" {
		e.SetRetrieval(serving.RetrievalConfig{Enabled: true, K: 64, Backend: backend, MinCatalog: 256})
	}
	return e
}

// benchServe measures the full Click hot path (history update, retrieval or
// exhaustive scoring, ranking, memo write) on a pre-built engine.
func benchServe(e *serving.Engine, n int) testing.BenchmarkResult {
	ctx := context.Background()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Distinct tags keep every Click a real recomputation (the click
			// invalidates the session memo); one session bounds history growth
			// via EndSession every 64 turns.
			if recs, _ := e.Click(ctx, 0, 1, (i*1009)%n, 10); len(recs) == 0 {
				b.Fatal("no recommendations")
			}
			if i%64 == 63 {
				e.EndSession(1)
			}
		}
	})
}

func runServePath(rep *report, n, dim int) {
	log.Printf("serve path: %d tags", n)
	emb := synth.TagVecs(n, dim, n/100, 0.08, 61)

	exh := benchServe(buildEngine(emb, ""), n)
	rep.ServePath = append(rep.ServePath, servePoint{
		Mode: "exhaustive", Tags: n,
		NsPerOp: exh.NsPerOp(), BytesPerOp: exh.AllocedBytesPerOp(), AllocsPerOp: exh.AllocsPerOp(),
	})
	log.Printf("serve path exhaustive: %d ns/op %d allocs/op", exh.NsPerOp(), exh.AllocsPerOp())

	for _, backend := range []string{"hnsw", "lsh"} {
		e := buildEngine(emb, backend)
		res := benchServe(e, n)
		// Retriever-only numbers: the allocs/op of the raw index search is the
		// pooled-scratch satellite's regression gate.
		var r ann.Retriever
		if backend == "hnsw" {
			r = ann.BuildGraph(emb, ann.DefaultGraphConfig())
		} else {
			r = ann.Build(emb, ann.DefaultConfig())
		}
		sc := ann.NewScratch()
		q := emb.Row(0)
		r.SearchInto(sc, q, 64, -1)
		searchAllocs := testing.AllocsPerRun(200, func() { r.SearchInto(sc, q, 64, -1) })
		start := time.Now()
		for i := 0; i < 400; i++ {
			r.SearchInto(sc, q, 64, -1)
		}
		searchNs := time.Since(start).Nanoseconds() / 400

		sp := servePoint{
			Mode: "ann-" + backend, Tags: n,
			NsPerOp: res.NsPerOp(), BytesPerOp: res.AllocedBytesPerOp(), AllocsPerOp: res.AllocsPerOp(),
			SearchNs: searchNs, SearchAlloc: searchAllocs,
		}
		rep.ServePath = append(rep.ServePath, sp)
		log.Printf("serve path %s: %d ns/op %d allocs/op (search %d ns, %.0f allocs)",
			sp.Mode, sp.NsPerOp, sp.AllocsPerOp, searchNs, searchAllocs)

		speedup := float64(exh.NsPerOp()) / float64(res.NsPerOp())
		if backend == "hnsw" {
			rep.Acceptance.SpeedupHNSW = speedup
		} else {
			rep.Acceptance.SpeedupLSH = speedup
		}
	}
	rep.Acceptance.ServeTags = n
}

func main() {
	sizes := flag.String("sizes", "100000,1000000", "comma-separated catalog sizes for the recall/latency curves")
	serveTags := flag.Int("serve-tags", 100000, "catalog size for the serve-path benchmark")
	dim := flag.Int("dim", 32, "embedding dimension")
	k := flag.Int("k", 10, "neighbors per query (recall@k)")
	out := flag.String("o", "BENCH_PR7.json", "output JSON path")
	flag.Parse()

	rep := &report{GeneratedUnix: time.Now().Unix(), Dim: *dim, K: *k, Clusters: "n/100 Gaussian clusters, spread 0.08"}
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1000 {
			log.Fatalf("bad size %q", s)
		}
		runCurves(rep, n, *dim, *k)
	}
	runServePath(rep, *serveTags, *dim)

	best := rep.Acceptance.SpeedupHNSW
	if rep.Acceptance.SpeedupLSH > best {
		best = rep.Acceptance.SpeedupLSH
	}
	rep.Acceptance.Pass = best >= 10 && rep.Acceptance.BestRecallAt10 >= 0.95
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (speedup hnsw=%.1fx lsh=%.1fx, best recall@%d=%.3f, pass=%v)",
		*out, rep.Acceptance.SpeedupHNSW, rep.Acceptance.SpeedupLSH, *k, rep.Acceptance.BestRecallAt10, rep.Acceptance.Pass)
	if !rep.Acceptance.Pass {
		os.Exit(1)
	}
}
