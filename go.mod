module intellitag

go 1.22
