// Package intellitag's root benchmarks regenerate the measurable component
// of every table and figure in the paper's evaluation section. Each
// benchmark times the dominant computation behind one experiment; the
// experiment outputs themselves (metric values, orderings) come from
// `go run ./cmd/experiments` and are recorded in EXPERIMENTS.md.
package intellitag_test

import (
	"context"
	"testing"

	"intellitag/internal/baselines"
	"intellitag/internal/core"
	"intellitag/internal/eval"
	"intellitag/internal/serving"
	"intellitag/internal/store"
	"intellitag/internal/synth"
	"intellitag/internal/tagmining"
)

// ctx is the plain request context shared by serving-path benchmarks.
var ctx = context.Background()

// benchWorld is shared by all benchmarks (generated once).
var benchWorld = synth.Generate(synth.SmallConfig())

func benchSessions() [][]int {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	var out [][]int
	for _, s := range train {
		out = append(out, s.Clicks)
	}
	return out
}

// BenchmarkTableII_DatasetBuild times world generation + graph construction
// (the data-construction pipeline behind Table II).
func BenchmarkTableII_DatasetBuild(b *testing.B) {
	cfg := synth.SmallConfig()
	for i := 0; i < b.N; i++ {
		w := synth.Generate(cfg)
		g := w.BuildGraph(w.Sessions)
		if g.TotalEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkTableIII_TeacherInference times the multi-task teacher's
// inference pass (the quantity the paper's Table III reports as 570 min at
// production scale).
func BenchmarkTableIII_TeacherInference(b *testing.B) {
	sentences := benchWorld.LabeledSentences()
	vocab := tagmining.BuildVocab(sentences)
	m := tagmining.NewModel(tagmining.TeacherConfig(), vocab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(sentences[i%len(sentences)].Tokens)
	}
}

// BenchmarkTableIII_StudentInference times the distilled student — the
// "14x faster" row of Table III.
func BenchmarkTableIII_StudentInference(b *testing.B) {
	sentences := benchWorld.LabeledSentences()
	vocab := tagmining.BuildVocab(sentences)
	m := tagmining.NewModel(tagmining.StudentConfig(), vocab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(sentences[i%len(sentences)].Tokens)
	}
}

// BenchmarkTableIII_MultiTaskTrainEpoch times one training epoch of the
// multi-task miner.
func BenchmarkTableIII_MultiTaskTrainEpoch(b *testing.B) {
	sentences := benchWorld.LabeledSentences()[:60]
	vocab := tagmining.BuildVocab(sentences)
	cfg := tagmining.DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tagmining.NewModel(tagmining.StudentConfig(), vocab)
		tagmining.TrainMultiTask(m, sentences, cfg)
	}
}

// newBenchIntelliTag builds (untrained) the full model for inference
// benches.
func newBenchIntelliTag() *core.Model {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	graph := benchWorld.BuildGraph(train)
	cfg := core.DefaultConfig()
	cfg.Dim, cfg.Heads = 16, 2
	return core.Build(cfg, graph, nil)
}

// BenchmarkTableIV_IntelliTagTrainEpoch times one end-to-end training epoch
// of the full model (the Table IV training cost).
func BenchmarkTableIV_IntelliTagTrainEpoch(b *testing.B) {
	sessions := benchSessions()[:100]
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	graph := benchWorld.BuildGraph(train)
	cfg := core.DefaultConfig()
	cfg.Dim, cfg.Heads = 16, 2
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.Build(cfg, graph, nil)
		core.TrainEndToEnd(m, sessions, tc)
	}
}

// BenchmarkTableIV_IntelliTagScore times one next-click scoring call with
// the live graph encoder (offline evaluation inner loop of Table IV).
func BenchmarkTableIV_IntelliTagScore(b *testing.B) {
	m := newBenchIntelliTag()
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}

// BenchmarkTableIV_BERT4RecScore is the strongest baseline's scoring cost.
func BenchmarkTableIV_BERT4RecScore(b *testing.B) {
	m := baselines.NewBERT4Rec(benchWorld.NumTags(), 16, 2, 2, 12, 0.2, 1)
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}

// BenchmarkTableIV_GRU4RecScore is the RNN baseline's scoring cost.
func BenchmarkTableIV_GRU4RecScore(b *testing.B) {
	m := baselines.NewGRU4Rec(benchWorld.NumTags(), 16, 16, 12, 1)
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}

// BenchmarkTableIV_SRGNNScore is the session-graph baseline's scoring cost.
func BenchmarkTableIV_SRGNNScore(b *testing.B) {
	m := baselines.NewSRGNN(benchWorld.NumTags(), 16, 1, 12, 1)
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}

// BenchmarkTableIV_Metapath2VecScore is the embedding-lookup baseline's
// scoring cost (the paper's fastest online model).
func BenchmarkTableIV_Metapath2VecScore(b *testing.B) {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	graph := benchWorld.BuildGraph(train)
	cfg := baselines.DefaultMetapath2VecConfig()
	cfg.Epochs = 1
	cfg.WalksPerNode = 2
	m := baselines.NewMetapath2Vec(graph, 16, benchSessions(), cfg)
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}

// BenchmarkTableV_AblationForward compares the graph encoder with and
// without neighbor attention (the Table V na ablation's compute side).
func BenchmarkTableV_AblationForward(b *testing.B) {
	m := newBenchIntelliTag()
	b.Run("with-na", func(b *testing.B) {
		m.Graph.UniformNeighbor = false
		for i := 0; i < b.N; i++ {
			m.Graph.Forward(i % m.NumTags)
		}
	})
	b.Run("without-na", func(b *testing.B) {
		m.Graph.UniformNeighbor = true
		for i := 0; i < b.N; i++ {
			m.Graph.Forward(i % m.NumTags)
		}
	})
}

// BenchmarkFig5_AttentionExtraction times the case-study introspection.
func BenchmarkFig5_AttentionExtraction(b *testing.B) {
	m := newBenchIntelliTag()
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ContextualAttention(history)
	}
}

// BenchmarkFig6_DimSweepPoint times one sweep point's embedding inference
// (EmbedAll is the dominant fixed cost per dimension setting).
func BenchmarkFig6_DimSweepPoint(b *testing.B) {
	m := newBenchIntelliTag()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Graph.EmbedAll()
	}
}

// BenchmarkFig7_OnlineDay times one simulated day of online traffic against
// a frozen IntelliTag engine.
func BenchmarkFig7_OnlineDay(b *testing.B) {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	catalog, index := serving.BuildCatalog(benchWorld, train)
	m := newBenchIntelliTag()
	m.Freeze()
	engine := serving.NewEngine(catalog, index, m, store.NewLog(), nil)
	cfg := serving.DefaultSimConfig()
	cfg.Days = 1
	cfg.SessionsPerDay = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		serving.Simulate(benchWorld, engine, cfg)
	}
}

// BenchmarkTableVI_ServingLatency times a single online recommendation
// request end to end through the engine (the Table VI latency column).
func BenchmarkTableVI_ServingLatency(b *testing.B) {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	catalog, index := serving.BuildCatalog(benchWorld, train)
	m := newBenchIntelliTag()
	m.Freeze()
	engine := serving.NewEngine(catalog, index, m, nil, nil)
	engine.Click(ctx, 0, 1, catalog.TenantTags[0][0], 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.RecommendTags(ctx, 0, 1, 5)
	}
}

// BenchmarkTableVI_AskLatency times the Q&A answer path (retrieval +
// rerank), the other online flow of Table VI.
func BenchmarkTableVI_AskLatency(b *testing.B) {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	catalog, index := serving.BuildCatalog(benchWorld, train)
	m := newBenchIntelliTag()
	m.Freeze()
	engine := serving.NewEngine(catalog, index, m, nil, nil)
	question := benchWorld.RQs[0].Text
	tenant := benchWorld.RQs[0].Tenant
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Ask(ctx, tenant, 1, question)
	}
}

// BenchmarkRankingProtocol times the shared 49-negative evaluation loop
// that every offline table uses.
func BenchmarkRankingProtocol(b *testing.B) {
	m := newBenchIntelliTag()
	m.Freeze()
	_, _, test := benchWorld.SplitSessions(0.8, 0.1)
	p := eval.DefaultProtocol()
	p.MaxQueries = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.EvaluateRanking(m, benchWorld, test, p)
	}
}
