// Parallel-scaling benchmarks for the batched execution layer: the same
// three hot paths the paper cares about — training, offline embedding
// inference, online recommendation — at 1, 2 and NumCPU workers. The
// before/after table lives in EXPERIMENTS.md.
package intellitag_test

import (
	"fmt"
	"runtime"
	"testing"

	"intellitag/internal/core"
	"intellitag/internal/eval"
	"intellitag/internal/serving"
	"intellitag/internal/synth"
)

// workerCounts returns the sweep {1, 2, NumCPU} without duplicates.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkParallelTrainEpoch: one end-to-end training epoch with batch 8 at
// each worker count. The final parameters are identical across the sweep;
// only wall clock changes.
func BenchmarkParallelTrainEpoch(b *testing.B) {
	sessions := benchSessions()[:100]
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	graph := benchWorld.BuildGraph(train)
	cfg := core.DefaultConfig()
	cfg.Dim, cfg.Heads = 16, 2
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			tc := core.DefaultTrainConfig()
			tc.Epochs = 1
			tc.BatchSize = 8
			tc.Workers = w
			for i := 0; i < b.N; i++ {
				m := core.Build(cfg, graph, nil)
				core.TrainEndToEnd(m, sessions, tc)
			}
		})
	}
}

// BenchmarkParallelEmbedAll: the offline inference sweep that produces the
// serving embedding table.
func BenchmarkParallelEmbedAll(b *testing.B) {
	m := newBenchIntelliTag()
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			m.Graph.Workers = w
			for i := 0; i < b.N; i++ {
				m.Graph.EmbedAll()
			}
		})
	}
}

// BenchmarkParallelRecommendTags: concurrent recommendation requests against
// one engine whose scorer pool holds w replicas (the serving throughput
// story; per-request latency is BenchmarkTableVI_ServingLatency).
func BenchmarkParallelRecommendTags(b *testing.B) {
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	catalog, index := serving.BuildCatalog(benchWorld, train)
	m := newBenchIntelliTag()
	m.Freeze()
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			engine := serving.NewEngine(catalog, index, m, nil, nil)
			engine.SetWorkers(w)
			engine.Click(ctx, 0, 1, catalog.TenantTags[0][0], 5)
			b.SetParallelism(1) // GOMAXPROCS goroutines total
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					engine.RecommendTags(ctx, 0, 1, 5)
				}
			})
		})
	}
}

// BenchmarkServingScorePaperScale compares the two scoring paths at the
// paper's production scale (dim 100, 4 heads, 2 layers, ~2000 tags): the
// original full-vocabulary projection (NextLogits, then index the
// candidates) versus candidate-column scoring, which projects only the last
// position onto the candidates' output columns. At this scale the Dim x
// NumTags projection rivals the Transformer trunk, so skipping it roughly
// halves the request; the scores are bit-identical
// (TestScoreCandidatesMatchesNextLogits).
func BenchmarkServingScorePaperScale(b *testing.B) {
	cfg := synth.SmallConfig()
	cfg.NumTopics = 25
	cfg.TagsPerTopic = 80
	cfg.NumSessions = 300
	w := synth.Generate(cfg)
	train, _, _ := w.SplitSessions(0.8, 0.1)
	graph := w.BuildGraph(train)

	mcfg := core.DefaultConfig()
	mcfg.Dim, mcfg.Heads = 100, 4 // the paper's production setting
	m := core.Build(mcfg, graph, nil)
	m.Freeze()

	history := make([]int, mcfg.MaxLen-1) // full-length session
	for i := range history {
		history[i] = i % w.NumTags()
	}
	cands := w.TagsOfTenant(0)

	b.Run("full-vocabulary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			logits := m.NextLogits(history)
			out := make([]float64, len(cands))
			for j, c := range cands {
				out[j] = logits[c]
			}
		}
	})
	b.Run("candidate-columns", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.ScoreCandidates(history, cands)
		}
	})
}

// BenchmarkParallelRankingSweep: the shared 49-negative offline evaluation
// loop at each worker count.
func BenchmarkParallelRankingSweep(b *testing.B) {
	m := newBenchIntelliTag()
	m.Freeze()
	_, _, test := benchWorld.SplitSessions(0.8, 0.1)
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			p := eval.DefaultProtocol()
			p.MaxQueries = 200
			p.Workers = w
			for i := 0; i < b.N; i++ {
				eval.EvaluateRanking(m, benchWorld, test, p)
			}
		})
	}
}
