// PR2 benchmarks: the alloc-discipline trajectory of the hot paths. These are
// the benchmarks `make bench` serializes into BENCH_PR2.json (via
// cmd/benchjson) so the kernel/pooling work of this PR — and any later
// regression — is measured against a recorded baseline. The train-step and
// graph-embedding halves live in internal/core where the unexported step
// functions are reachable.
package intellitag_test

import (
	"testing"

	"intellitag/internal/mat"
)

// BenchmarkPR2_MatMul measures the allocating matmul kernel (one fresh output
// matrix per call) at a transformer-block-ish shape.
func BenchmarkPR2_MatMul(b *testing.B) {
	g := mat.NewRNG(1)
	x := mat.New(64, 64)
	y := mat.New(64, 64)
	g.Normal(x, 1)
	g.Normal(y, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMul(x, y)
	}
}

// BenchmarkPR2_ServeRecommend measures one serving recommendation: scoring a
// tenant's candidate tags against a session history on a frozen model — the
// compute inside Engine.RecommendTags once the memo misses.
func BenchmarkPR2_ServeRecommend(b *testing.B) {
	m := newBenchIntelliTag()
	m.Freeze()
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}
