// PR2 benchmarks: the alloc-discipline trajectory of the hot paths. These are
// the benchmarks `make bench` serializes into BENCH_PR2.json (via
// cmd/benchjson) so the kernel/pooling work of this PR — and any later
// regression — is measured against a recorded baseline. The train-step and
// graph-embedding halves live in internal/core where the unexported step
// functions are reachable.
package intellitag_test

import (
	"testing"

	"intellitag/internal/mat"
	"intellitag/internal/obs"
	"intellitag/internal/serving"
)

// BenchmarkPR2_MatMul measures the allocating matmul kernel (one fresh output
// matrix per call) at a transformer-block-ish shape.
func BenchmarkPR2_MatMul(b *testing.B) {
	g := mat.NewRNG(1)
	x := mat.New(64, 64)
	y := mat.New(64, 64)
	g.Normal(x, 1)
	g.Normal(y, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMul(x, y)
	}
}

// BenchmarkPR2_ServeRecommend measures one serving recommendation: scoring a
// tenant's candidate tags against a session history on a frozen model — the
// compute inside Engine.RecommendTags once the memo misses.
func BenchmarkPR2_ServeRecommend(b *testing.B) {
	m := newBenchIntelliTag()
	m.Freeze()
	cands := benchWorld.TagsOfTenant(0)
	history := benchWorld.Sessions[0].Clicks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreCandidates(history, cands)
	}
}

// newBenchServeEngine builds a frozen-model engine with a warm per-session
// recommendation memo, so the measured loop is the serve fast path: memo copy
// plus whatever instrumentation is installed.
func newBenchServeEngine(b *testing.B) *serving.Engine {
	b.Helper()
	train, _, _ := benchWorld.SplitSessions(0.8, 0.1)
	catalog, index := serving.BuildCatalog(benchWorld, train)
	m := newBenchIntelliTag()
	m.Freeze()
	engine := serving.NewEngine(catalog, index, m, nil, nil)
	engine.Click(ctx, 0, 1, catalog.TenantTags[0][0], 5)
	engine.RecommendTags(ctx, 0, 1, 5) // warm the memo
	return engine
}

// BenchmarkPR2_ServeRecommendMemo is the telemetry-off baseline of the
// memo-hit RecommendTags path (PR 2's 2 allocs/op budget).
func BenchmarkPR2_ServeRecommendMemo(b *testing.B) {
	engine := newBenchServeEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.RecommendTags(ctx, 0, 1, 5)
	}
}

// BenchmarkPR2_ServeRecommendMemoTelemetry is the same path with the full
// telemetry spine installed but the request unsampled — the production
// steady state. The budget is at most one extra alloc/op over
// BenchmarkPR2_ServeRecommendMemo: the one allowed alloc is the sentinel
// context an unsampled request carries so nested spans skip the sampling
// draw; counters and histograms are atomics only.
func BenchmarkPR2_ServeRecommendMemoTelemetry(b *testing.B) {
	engine := newBenchServeEngine(b)
	// Effectively-never sampling: every request pays the counter/histogram
	// atomics and the span nil check, none builds a span tree.
	engine.SetTelemetry(obs.NewRegistry(), obs.NewTracer(1<<30, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.RecommendTags(ctx, 0, 1, 5)
	}
}
